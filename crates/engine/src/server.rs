//! The discrete-event DBMS server: event dispatch over the pipeline stages.
//!
//! The server owns the simulation state — clients, per-class admission
//! pools, the broker, the event queue — and routes each popped event to the
//! stage that handles it. All compile/grant/execute *policy* lives in the
//! [`crate::stages`] modules; what remains here is dispatch plus the shared
//! machine model (CPU load factor, submission scheduling).

use crate::config::ServerConfig;
use crate::fault::{FaultKind, FaultSpec};
use crate::metrics::{ClassMetrics, RunMetrics};
use crate::profile::{CompileProfile, WorkloadProfiles};
use crate::stages::{ClassRuntime, Query};
use crate::trace::TraceEvent;
use std::collections::HashMap;
use std::sync::Arc;
use throttledb_bufferpool::HitRateModel;
use throttledb_executor::GrantOutcome;
use throttledb_executor::GrantRequestId;
use throttledb_membroker::{Clerk, MemoryBroker, SubcomponentKind};
use throttledb_plancache::PlanCache;
use throttledb_sim::{EventQueue, SimDuration, SimRng, SimTime};
use throttledb_workload::{ClientModel, TemplateId, Uniquifier, WorkloadMix};

/// Discrete events driving the simulation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// A client submits its next query.
    Submit { client: u32 },
    /// One compilation memory-growth step completes.
    CompileStep { query: u64 },
    /// A gateway wait reached its timeout.
    CompileTimeout { query: u64, level: usize },
    /// A grant wait reached its timeout.
    GrantTimeout { query: u64 },
    /// A query finished executing.
    ExecFinish { query: u64 },
    /// Periodic broker recalculation / housekeeping.
    BrokerTick,
    /// An installed fault's window begins (index into the fault list).
    FaultBegin { index: u32 },
    /// An installed fault's window ends; its effects are reverted.
    FaultEnd { index: u32 },
    /// One allocation increment of an active memory-leak fault.
    LeakStep { index: u32 },
}

/// Plan-cache key: a compact, copyable stand-in for the query text the
/// paper's text-keyed cache would hash.
///
/// Lookups key on the FNV-1a digest of the submission's uniquified SQL;
/// insertions key on the (template, submission) pair that produced the
/// plan. The two variants can never collide, preserving the workload's
/// designed-in property that the uniquifier defeats the cache — while the
/// hot path stops cloning SQL strings entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum PlanKey {
    /// Digest of a submission's uniquified text (lookup side).
    Text(u64),
    /// A compiled plan's identity (insert side).
    Compiled(TemplateId, u64),
}

/// The simulated server: builds the paper's machine, runs the client
/// population, and returns the run's metrics.
pub struct Server {
    pub(crate) config: ServerConfig,
    pub(crate) profiles: Arc<WorkloadProfiles>,
    pub(crate) broker: Arc<MemoryBroker>,
    pub(crate) compile_clerk: Clerk,
    /// One admission-pool runtime per configured workload class.
    pub(crate) classes: Vec<ClassRuntime>,
    /// Client id -> class index (precomputed, deterministic).
    pub(crate) class_by_client: Vec<usize>,
    pub(crate) plan_cache: PlanCache<TemplateId, PlanKey>,
    pub(crate) hit_model: HitRateModel,
    pub(crate) uniquifier: Uniquifier,
    pub(crate) client_model: ClientModel,
    pub(crate) rng: SimRng,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) queries: HashMap<u64, Query>,
    /// (class, policy task handle) -> query id, for resuming admitted
    /// waiters.
    pub(crate) task_to_query: HashMap<(usize, u64), u64>,
    pub(crate) grant_to_query: HashMap<(usize, GrantRequestId), u64>,
    pub(crate) next_query: u64,
    pub(crate) running_cpu_tasks: u32,
    pub(crate) metrics: RunMetrics,
    pub(crate) now: SimTime,
    /// Number of clients currently in the closed loop (scenario phases
    /// raise and lower this between windows).
    pub(crate) active_clients: u32,
    /// The order clients are activated in when only part of the population
    /// participates: interleaves classes proportionally to their shares
    /// (see [`ServerConfig::activation_order`]).
    pub(crate) activation_order: Vec<u32>,
    /// Per-client participation flag: the first `active_clients` entries of
    /// `activation_order` are active.
    pub(crate) client_active: Vec<bool>,
    /// Per-client busy flag: true while the client has a pending submission
    /// event or an in-flight query. Prevents a re-activated client from
    /// running two closed loops at once.
    pub(crate) client_busy: Vec<bool>,
    /// The active workload mix submissions are sampled from.
    pub(crate) mix: WorkloadMix,
    /// Scenario knob: scales every class's grant-pool budget at each broker
    /// tick (1.0 = the configured budgets; < 1 models a degraded pool).
    pub(crate) grant_budget_scale: f64,
    /// Recorded admission/grant events, when tracing is enabled.
    pub(crate) trace: Option<Vec<TraceEvent>>,
    /// Running compile-memory high-water mark since the last phase boundary
    /// (trace recording only).
    pub(crate) trace_peak: u64,
    /// Reused buffer for admission-policy releases (see `fail_query` /
    /// `finish_compile`): the release path appends admitted tasks here
    /// instead of allocating a vector per completed query.
    pub(crate) scratch_resumed: Vec<u64>,
    /// Reused buffer for grant-pool admissions, same discipline.
    pub(crate) scratch_admitted: Vec<(GrantRequestId, GrantOutcome)>,
    /// Installed fault specs (see [`crate::Server::install_faults`]).
    pub(crate) faults: Vec<FaultSpec>,
    /// Per-fault active flag; effect multipliers are recomputed from the
    /// active set on every begin/end so reverting is exact.
    pub(crate) fault_active: Vec<bool>,
    /// Ballast currently allocated per memory-leak fault (freed exactly
    /// when the fault clears).
    pub(crate) leak_allocated: Vec<u64>,
    /// The leak faults' broker clerk: a `Fixed` subcomponent the broker
    /// accounts for but never squeezes. Registered lazily when faults with
    /// leaks are installed.
    pub(crate) ballast_clerk: Option<Clerk>,
    /// Dedicated RNG stream for fault-effect jitter, seeded from the run
    /// seed but independent of the workload stream — a faulted run's
    /// client behaviour stays draw-for-draw comparable to its fault-free
    /// twin until the effects themselves diverge it.
    pub(crate) fault_rng: SimRng,
    /// Product of the active compile-stall multipliers (1.0 = no stall).
    pub(crate) compile_stall: f64,
    /// CPUs currently lost to slot-loss faults.
    pub(crate) lost_slots: u32,
    /// Product of the active grant-collapse scales (1.0 = no collapse).
    pub(crate) fault_grant_scale: f64,
    /// Number of currently active fault windows (completions during any
    /// window count toward goodput-under-fault).
    pub(crate) active_faults: u32,
    /// Consecutive failed/shed attempts per client (reset on success or
    /// when the chain is abandoned); indexes the backoff exponent.
    pub(crate) retry_attempts: Vec<u32>,
    /// When each client's current retry chain first submitted (the total
    /// query deadline is measured from here).
    pub(crate) first_attempt_at: Vec<SimTime>,
}

impl Server {
    /// Build a server from a configuration and pre-characterized profiles.
    pub fn new(config: ServerConfig, profiles: Arc<WorkloadProfiles>) -> Self {
        config.validate();
        let broker = MemoryBroker::new(config.broker.clone());
        let compile_clerk = broker.register(SubcomponentKind::Compilation);
        let exec_clerk = broker.register(SubcomponentKind::Execution);
        let cache_clerk = broker.register(SubcomponentKind::PlanCache);
        let exec_budget = broker.target_for_kind(SubcomponentKind::Execution);
        let compile_budget = broker.target_for_kind(SubcomponentKind::Compilation);
        let total_share: f64 = config.classes.iter().map(|c| c.client_share).sum();
        let classes = config
            .classes
            .iter()
            .map(|spec| {
                ClassRuntime::new(
                    spec.clone(),
                    &config.throttle,
                    exec_budget,
                    &exec_clerk,
                    config.policy,
                    crate::stages::scaled_budget(compile_budget, spec.client_share / total_share),
                    config.breaker,
                )
            })
            .collect();
        let class_by_client = config.class_assignment();
        let plan_cache = PlanCache::new(256 << 20, Some(cache_clerk));
        let mut metrics = RunMetrics::new(
            config.slice,
            SimTime::ZERO + config.warmup,
            config.policy.levels(&config.throttle),
        );
        metrics.run_duration = config.duration;
        let mut client_model = config.client_model;
        client_model.oltp_fraction = config.oltp_fraction;
        let clients = config.clients as usize;
        Server {
            rng: SimRng::seed_from_u64(config.seed),
            profiles,
            broker,
            compile_clerk,
            classes,
            class_by_client,
            plan_cache,
            hit_model: HitRateModel::default(),
            uniquifier: Uniquifier::new(),
            client_model,
            queue: EventQueue::new(),
            queries: HashMap::new(),
            task_to_query: HashMap::new(),
            grant_to_query: HashMap::new(),
            next_query: 0,
            running_cpu_tasks: 0,
            metrics,
            now: SimTime::ZERO,
            active_clients: 0,
            activation_order: config.activation_order(),
            client_active: vec![false; clients],
            client_busy: vec![false; clients],
            mix: WorkloadMix::paper_default(config.oltp_fraction),
            grant_budget_scale: 1.0,
            trace: None,
            trace_peak: 0,
            scratch_resumed: Vec::new(),
            scratch_admitted: Vec::new(),
            faults: Vec::new(),
            fault_active: Vec::new(),
            leak_allocated: Vec::new(),
            ballast_clerk: None,
            // Independent stream: derived from the run seed, but no draw is
            // taken from the workload RNG.
            fault_rng: SimRng::seed_from_u64(config.seed ^ 0xC4A0_55EED_u64),
            compile_stall: 1.0,
            lost_slots: 0,
            fault_grant_scale: 1.0,
            active_faults: 0,
            retry_attempts: vec![0; clients],
            first_attempt_at: vec![SimTime::ZERO; clients],
            config,
        }
    }

    /// Run the simulation to completion and return the metrics.
    pub fn run(mut self) -> RunMetrics {
        self.set_active_clients(self.config.clients);
        self.begin();
        self.run_until(SimTime::ZERO + self.config.duration);
        self.finish()
    }

    // --- scenario runner hooks --------------------------------------------
    //
    // `run()` is built from these four public hooks so an external driver
    // (the `throttledb-scenario` runner) can interleave phase mutations with
    // simulation windows: begin once, then alternate `set_*` mutators with
    // `run_until` at phase boundaries, and `finish` at the end.

    /// Start the server's housekeeping (the periodic broker tick). Call
    /// once, after configuring the initial client population.
    pub fn begin(&mut self) {
        self.queue.schedule(self.now, Event::BrokerTick);
    }

    /// Advance the simulation, processing every event scheduled strictly
    /// before `until`, then park the clock at `until`. Events at or beyond
    /// the boundary stay queued, so a later call picks up exactly where
    /// this one stopped.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(ev) = self.queue.pop_before(until) {
            self.now = ev.at;
            match ev.payload {
                Event::Submit { client } => self.on_submit(client),
                Event::CompileStep { query } => self.on_compile_step(query),
                Event::CompileTimeout { query, level } => self.on_compile_timeout(query, level),
                Event::GrantTimeout { query } => self.on_grant_timeout(query),
                Event::ExecFinish { query } => self.on_exec_finish(query),
                Event::BrokerTick => self.on_broker_tick(),
                Event::FaultBegin { index } => self.on_fault_begin(index),
                Event::FaultEnd { index } => self.on_fault_end(index),
                Event::LeakStep { index } => self.on_leak_step(index),
            }
        }
        self.now = self.now.max(until);
    }

    /// Resize the active client population to `n` (capped at the configured
    /// maximum). Clients are (de)activated in the proportional-interleave
    /// order of [`ServerConfig::activation_order`], so a partial population
    /// covers every workload class by share instead of starving the later
    /// classes. New clients submit their first query within the next
    /// simulated minute; removed clients leave the closed loop as soon as
    /// their in-flight work completes.
    pub fn set_active_clients(&mut self, n: u32) {
        let n = n.min(self.config.clients) as usize;
        for idx in 0..self.activation_order.len() {
            let client = self.activation_order[idx] as usize;
            let want = idx < n;
            if want && !self.client_active[client] {
                self.client_active[client] = true;
                if !self.client_busy[client] {
                    let offset = SimDuration::from_millis(self.rng.uniform_u64(0, 60_000));
                    self.queue.schedule(
                        self.now + offset,
                        Event::Submit {
                            client: client as u32,
                        },
                    );
                    self.client_busy[client] = true;
                }
            } else if !want && self.client_active[client] {
                self.client_active[client] = false;
            }
        }
        self.active_clients = n as u32;
    }

    /// Replace the workload mix submissions are sampled from. TPC-H-like
    /// weight is only effective when the server's profiles were
    /// characterized with the TPC-H-like templates
    /// (see [`WorkloadProfiles::characterize_full`]).
    pub fn set_workload_mix(&mut self, mix: WorkloadMix) {
        mix.validate();
        self.mix = mix;
    }

    /// Override the mean think time of the client population (burst phases
    /// shorten it; recovery phases restore the configured value).
    pub fn set_mean_think_time(&mut self, mean: SimDuration) {
        assert!(!mean.is_zero(), "mean think time must be positive");
        self.client_model.mean_think_time = mean;
    }

    /// Scale every class's execution-grant budget (1.0 = configured
    /// budgets). Takes effect at the next broker tick, within one
    /// `broker_tick` interval. Scenario phases use this to model a
    /// degrading resource pool.
    pub fn set_grant_budget_scale(&mut self, scale: f64) {
        assert!(scale > 0.0, "grant budget scale must be positive");
        self.grant_budget_scale = scale;
    }

    /// Consume the server and return the run's metrics.
    pub fn finish(self) -> RunMetrics {
        self.finalize_metrics()
    }

    // --- fault injection --------------------------------------------------

    /// Install a set of timed faults (see [`FaultSpec`]). Call once, before
    /// [`Server::begin`]: each fault becomes a pair of begin/end events on
    /// the wheel, so injection is part of the deterministic event order and
    /// replays byte-identically. Faults whose windows extend past the run
    /// simply never clear (their effects last to the end).
    pub fn install_faults(&mut self, faults: &[FaultSpec]) {
        if faults.is_empty() {
            return;
        }
        assert!(self.faults.is_empty(), "faults already installed");
        for (index, fault) in faults.iter().enumerate() {
            fault.validate();
            self.faults.push(*fault);
            self.fault_active.push(false);
            self.leak_allocated.push(0);
            self.queue.schedule(
                fault.start,
                Event::FaultBegin {
                    index: index as u32,
                },
            );
            self.queue.schedule(
                fault.end(),
                Event::FaultEnd {
                    index: index as u32,
                },
            );
        }
        if self
            .faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::MemoryLeak { .. }))
            && self.ballast_clerk.is_none()
        {
            // Fixed: the broker accounts for the ballast (available_bytes
            // shrinks, pressure rises) but never asks it to shrink —
            // exactly how a leak behaves.
            self.ballast_clerk = Some(self.broker.register(SubcomponentKind::Fixed));
        }
    }

    fn on_fault_begin(&mut self, index: u32) {
        let i = index as usize;
        let spec = self.faults[i];
        self.fault_active[i] = true;
        self.active_faults += 1;
        self.trace_push(TraceEvent::FaultInjected {
            at: self.now,
            fault: index,
        });
        self.recompute_fault_effects();
        match spec.kind {
            FaultKind::MemoryLeak { .. } => {
                self.queue.schedule(self.now, Event::LeakStep { index });
            }
            FaultKind::ClientSurge { extra_clients } => {
                let n = self.active_clients.saturating_add(extra_clients);
                self.set_active_clients(n);
            }
            FaultKind::CompileStall { .. }
            | FaultKind::SlotLoss { .. }
            | FaultKind::GrantCollapse { .. } => {}
        }
    }

    fn on_fault_end(&mut self, index: u32) {
        let i = index as usize;
        if !self.fault_active[i] {
            return;
        }
        let spec = self.faults[i];
        self.fault_active[i] = false;
        self.active_faults = self.active_faults.saturating_sub(1);
        self.trace_push(TraceEvent::FaultCleared {
            at: self.now,
            fault: index,
        });
        self.recompute_fault_effects();
        match spec.kind {
            FaultKind::MemoryLeak { .. } => {
                let leaked = std::mem::take(&mut self.leak_allocated[i]);
                if leaked > 0 {
                    if let Some(clerk) = self.ballast_clerk.as_ref() {
                        clerk.free(leaked);
                    }
                }
            }
            FaultKind::ClientSurge { extra_clients } => {
                let n = self.active_clients.saturating_sub(extra_clients);
                self.set_active_clients(n);
            }
            FaultKind::CompileStall { .. }
            | FaultKind::SlotLoss { .. }
            | FaultKind::GrantCollapse { .. } => {}
        }
    }

    fn on_leak_step(&mut self, index: u32) {
        let i = index as usize;
        if !self.fault_active[i] {
            return;
        }
        let spec = self.faults[i];
        let FaultKind::MemoryLeak { total_bytes, steps } = spec.kind else {
            return;
        };
        let per_step = (total_bytes / steps as u64).max(1);
        // Jitter each increment from the dedicated fault stream; the ramp
        // stays deterministic and never overshoots the configured total.
        let jittered = (per_step as f64 * self.fault_rng.jitter(0.25)) as u64;
        let remaining = total_bytes.saturating_sub(self.leak_allocated[i]);
        let amount = jittered.clamp(1, remaining.max(1)).min(remaining);
        if amount > 0 {
            if let Some(clerk) = self.ballast_clerk.as_ref() {
                clerk.allocate(amount);
            }
            self.leak_allocated[i] += amount;
        }
        if self.leak_allocated[i] < total_bytes {
            let interval =
                SimDuration::from_micros((spec.duration.as_micros() / steps as u64).max(1_000_000));
            let next = self.now + interval;
            if next < spec.end() {
                self.queue.schedule(next, Event::LeakStep { index });
            }
        }
    }

    /// Recompute the effect multipliers from the set of currently active
    /// faults. Doing this from scratch on every begin/end keeps reverting
    /// exact (no drifting inverse floating-point updates).
    fn recompute_fault_effects(&mut self) {
        let mut stall = 1.0;
        let mut lost: u32 = 0;
        let mut grant = 1.0;
        for (i, fault) in self.faults.iter().enumerate() {
            if !self.fault_active[i] {
                continue;
            }
            match fault.kind {
                FaultKind::CompileStall { multiplier } => stall *= multiplier,
                FaultKind::SlotLoss { slots } => lost = lost.saturating_add(slots),
                FaultKind::GrantCollapse { scale } => grant *= scale,
                FaultKind::MemoryLeak { .. } | FaultKind::ClientSurge { .. } => {}
            }
        }
        self.compile_stall = stall;
        self.lost_slots = lost.min(self.config.cpus - 1);
        self.fault_grant_scale = grant;
    }

    // --- observers --------------------------------------------------------

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The metrics accumulated so far (scenario phase reports snapshot
    /// these at boundaries).
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Total queries submitted so far.
    pub fn queries_submitted(&self) -> u64 {
        self.next_query
    }

    /// The number of clients currently in the closed loop.
    pub fn active_clients(&self) -> u32 {
        self.active_clients
    }

    /// Total simulation events dispatched so far — the sweep harness
    /// divides this by wall time for an events/sec throughput figure.
    pub fn events_dispatched(&self) -> u64 {
        self.queue.dispatched()
    }

    /// The most events that were ever pending at once in the event queue.
    pub fn queue_peak_depth(&self) -> usize {
        self.queue.peak_len()
    }

    // --- trace recording --------------------------------------------------

    /// Start recording the admission/grant event stream
    /// (see [`TraceEvent`]).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Take the recorded events, leaving recording enabled but empty.
    /// Returns an empty vector if tracing was never enabled.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match self.trace.as_mut() {
            Some(events) => std::mem::take(events),
            None => Vec::new(),
        }
    }

    /// Record a phase boundary: emits a [`TraceEvent::PhaseStart`] and
    /// resets the compile-memory high-water mark that
    /// [`TraceEvent::CompilePeak`] events are measured against.
    pub fn trace_phase_start(&mut self, name: &str, clients: u32) {
        self.trace_peak = 0;
        let at = self.now;
        self.trace_push(TraceEvent::PhaseStart {
            at,
            name: name.to_string(),
            clients,
        });
    }

    /// Append `event` to the trace if recording is enabled.
    pub(crate) fn trace_push(&mut self, event: TraceEvent) {
        if let Some(events) = self.trace.as_mut() {
            events.push(event);
        }
    }

    /// Record the aggregate compile-memory gauge, plus a trace peak event
    /// when it reaches a new high since the last phase boundary. Every
    /// compile-memory sample must flow through here so the gauge and the
    /// trace agree on per-phase peaks.
    pub(crate) fn record_compile_gauge(&mut self) {
        let used = self.compile_clerk.used_bytes();
        self.metrics.compile_memory.record(self.now, used);
        if self.trace.is_some() && used > self.trace_peak {
            self.trace_peak = used;
            self.trace_push(TraceEvent::CompilePeak {
                at: self.now,
                bytes: used,
            });
        }
    }

    // --- shared machine model ---------------------------------------------

    /// The class index of `client`.
    pub(crate) fn class_of(&self, client: u32) -> usize {
        self.class_by_client[client as usize]
    }

    pub(crate) fn schedule_submit(&mut self, client: u32, delay: SimDuration) {
        let at = self.now + delay;
        // Strict bound to match run_until's exclusive boundary: an event at
        // exactly `duration` would never be popped.
        if self.client_active[client as usize] && at < SimTime::ZERO + self.config.duration {
            self.queue.schedule(at, Event::Submit { client });
            self.client_busy[client as usize] = true;
        } else {
            // The client leaves the closed loop (deactivated by a scenario
            // phase, or the run is over); a later phase may re-admit it.
            self.client_busy[client as usize] = false;
        }
    }

    pub(crate) fn compile_step_duration(&mut self, profile: &CompileProfile) -> SimDuration {
        let per_step = profile.compile_cpu_seconds / self.config.compile_steps as f64;
        // An active compile-stall fault multiplies the planner's service
        // time (self.compile_stall is 1.0 otherwise).
        SimDuration::from_secs_f64((per_step * self.load_factor() * self.compile_stall).max(0.001))
    }

    pub(crate) fn load_factor(&self) -> f64 {
        // Slot-loss faults shrink the effective machine; at least one CPU
        // always survives (see recompute_fault_effects).
        let cpus = (self.config.cpus - self.lost_slots).max(1);
        (self.running_cpu_tasks as f64 / cpus as f64).max(1.0)
    }

    /// A client's attempt failed or was shed: either schedule the capped
    /// exponential-backoff retry, or — when the retry budget or the total
    /// query deadline is exhausted — abandon the chain and let the client
    /// think about fresh work instead of churning the wheel.
    pub(crate) fn reschedule_after_setback(&mut self, client: u32) {
        let idx = client as usize;
        self.retry_attempts[idx] = self.retry_attempts[idx].saturating_add(1);
        let attempts = self.retry_attempts[idx];
        let over_budget = self.config.retry_budget > 0 && attempts > self.config.retry_budget;
        let over_deadline = self
            .config
            .query_deadline
            .is_some_and(|d| self.now >= self.first_attempt_at[idx] + d);
        if over_budget || over_deadline {
            self.metrics.retries_abandoned += 1;
            self.retry_attempts[idx] = 0;
            let think = self.client_model.think_time(&mut self.rng);
            self.schedule_submit(client, think);
        } else {
            let delay = self.client_model.retry_delay(&mut self.rng, attempts);
            self.schedule_submit(client, delay);
        }
    }

    /// Consult the class breaker (if enabled) about an arrival estimated at
    /// `bytes` of compilation memory, tracing any state transition the
    /// consultation causes.
    pub(crate) fn breaker_admit(
        &mut self,
        class: usize,
        bytes: u64,
    ) -> throttledb_governor::AdmissionDecision {
        let now = self.now;
        let Some(breaker) = self.classes[class].breaker.as_mut() else {
            return throttledb_governor::AdmissionDecision::Admit { units: 1 };
        };
        let before = breaker.state();
        let decision = breaker.admit(now, bytes);
        let after = breaker.state();
        if after != before {
            self.trace_push(TraceEvent::BreakerTransition {
                at: now,
                class,
                state: after,
            });
        }
        decision
    }

    /// Feed an outcome to the class breaker (if enabled), tracing any state
    /// transition it causes.
    pub(crate) fn breaker_record(&mut self, class: usize, success: bool) {
        let now = self.now;
        let Some(breaker) = self.classes[class].breaker.as_mut() else {
            return;
        };
        let before = breaker.state();
        if success {
            breaker.record_success(now);
        } else {
            breaker.record_failure(now);
        }
        let after = breaker.state();
        if after != before {
            self.trace_push(TraceEvent::BreakerTransition {
                at: now,
                class,
                state: after,
            });
        }
    }

    /// Fold per-class results into the run metrics.
    fn finalize_metrics(mut self) -> RunMetrics {
        self.metrics.events_dispatched = self.queue.dispatched();
        self.metrics.peak_queue_depth = self.queue.peak_len();
        let mut class_clients = vec![0u32; self.classes.len()];
        for class in &self.class_by_client {
            class_clients[*class] += 1;
        }
        for (idx, class) in self.classes.iter().enumerate() {
            self.metrics.throttle.merge(class.policy.stats());
            let (shed, transitions, brownout) = class
                .breaker
                .as_ref()
                .map(|b| (b.shed(), b.transitions(), b.brownout_admits()))
                .unwrap_or((0, 0, 0));
            self.metrics.breaker_transitions += transitions;
            self.metrics.brownout_admits += brownout;
            self.metrics.classes.push(ClassMetrics {
                name: class.spec.name.clone(),
                clients: class_clients[idx],
                completed: class.completed,
                completed_after_warmup: class.completed_after_warmup,
                failed: class.failed,
                best_effort_plans: class.best_effort_plans,
                shed,
                breaker_transitions: transitions,
                throttle: class.policy.stats().clone(),
                grants: class.grants.pool_stats(),
            });
        }
        // Fault windows, clamped to the observation window; a fault that
        // never began contributes nothing.
        let end = SimTime::ZERO + self.config.duration;
        self.metrics.fault_windows = self
            .faults
            .iter()
            .filter(|f| f.start < end)
            .map(|f| (f.start, f.end().min(end)))
            .collect();
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Arc<WorkloadProfiles> {
        Arc::new(WorkloadProfiles::characterize_sales(&ServerConfig::quick(
            8, true,
        )))
    }

    #[test]
    fn quick_run_completes_queries_and_is_deterministic() {
        let profiles = profiles();
        let run = |seed: u64| {
            let mut cfg = ServerConfig::quick(8, true);
            cfg.seed = seed;
            Server::new(cfg, profiles.clone()).run()
        };
        let a = run(1);
        assert!(
            a.completed.total() > 10,
            "an hour with 8 clients should complete queries, got {}",
            a.completed.total()
        );
        let b = run(1);
        assert_eq!(
            a.completed.total(),
            b.completed.total(),
            "same seed, same run"
        );
        let c = run(2);
        // A different seed gives a different (but same ballpark) run.
        assert!(c.completed.total() > 10);
    }

    #[test]
    fn throttled_run_engages_the_gateways() {
        let profiles = profiles();
        let metrics = Server::new(ServerConfig::quick(16, true), profiles).run();
        assert!(
            metrics.throttle.acquisitions.iter().sum::<u64>() > 0,
            "SALES compilations must acquire gateways"
        );
        assert!(metrics.compile_memory.max_value() > 100 << 20);
    }

    #[test]
    fn unthrottled_run_uses_more_compile_memory_at_peak() {
        let profiles = profiles();
        let throttled = Server::new(ServerConfig::quick(16, true), profiles.clone()).run();
        let unthrottled = Server::new(ServerConfig::quick(16, false), profiles).run();
        assert!(
            unthrottled.compile_memory.max_value() > throttled.compile_memory.max_value(),
            "throttling must cap concurrent compilation memory: {} vs {}",
            unthrottled.compile_memory.max_value(),
            throttled.compile_memory.max_value()
        );
        assert!(throttled.throttle.compilations_started >= throttled.completed.total());
    }

    #[test]
    fn single_class_run_reports_one_class_covering_everything() {
        let profiles = profiles();
        let metrics = Server::new(ServerConfig::quick(8, true), profiles).run();
        assert_eq!(metrics.classes.len(), 1);
        let class = &metrics.classes[0];
        assert_eq!(class.name, "default");
        assert_eq!(class.clients, 8);
        assert_eq!(class.completed, metrics.completed.total());
        assert_eq!(class.completed_after_warmup, metrics.completed_after_warmup);
        assert_eq!(class.throttle, metrics.throttle);
    }

    #[test]
    fn multi_class_run_is_deterministic_and_covers_all_classes() {
        let profiles = profiles();
        let run = || {
            let cfg = ServerConfig::quick(16, true).with_standard_classes();
            Server::new(cfg, profiles.clone()).run()
        };
        let a = run();
        assert_eq!(a.classes.len(), 3);
        let names: Vec<&str> = a.classes.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["default", "adhoc", "report"]);
        assert_eq!(a.classes.iter().map(|c| c.clients).sum::<u32>(), 16);
        // Every class makes progress...
        for class in &a.classes {
            assert!(class.completed > 0, "class {} idle", class.name);
        }
        // ...and the per-class counters add up to the run totals.
        assert_eq!(
            a.classes.iter().map(|c| c.completed).sum::<u64>(),
            a.completed.total()
        );
        assert_eq!(
            a.classes.iter().map(|c| c.failed).sum::<u64>(),
            a.failed.total()
        );
        // Seed-stable: an identical run reproduces the same per-class counts.
        let b = run();
        for (x, y) in a.classes.iter().zip(b.classes.iter()) {
            assert_eq!(x.completed, y.completed, "class {} not seed-stable", x.name);
            assert_eq!(x.failed, y.failed);
        }
    }

    #[test]
    fn partial_population_covers_every_class() {
        // A scenario phase running far fewer clients than the configured
        // maximum must still exercise every workload class (activation is
        // share-proportional, not a contiguous prefix that would starve
        // the later classes).
        let profiles = profiles();
        let cfg = ServerConfig::quick(18, true).with_standard_classes();
        let mut server = Server::new(cfg, profiles);
        server.set_active_clients(6);
        server.begin();
        server.run_until(SimTime::ZERO + SimDuration::from_secs(3600));
        let metrics = server.finish();
        assert_eq!(metrics.classes.len(), 3);
        for class in &metrics.classes {
            assert!(
                class.completed > 0,
                "class {} starved with a partial population",
                class.name
            );
        }
    }

    #[test]
    fn class_ladders_throttle_independently() {
        let profiles = profiles();
        let cfg = ServerConfig::quick(16, true).with_standard_classes();
        let metrics = Server::new(cfg, profiles).run();
        let adhoc = &metrics.classes[1];
        // The adhoc ladder's thresholds are halved, so its compilations
        // acquire gateways at sizes the default class would wave through.
        assert!(
            adhoc.throttle.acquisitions.iter().sum::<u64>() > 0,
            "adhoc class never engaged its ladder"
        );
    }

    #[test]
    fn every_policy_runs_the_quick_config_deterministically() {
        let profiles = profiles();
        for kind in crate::config::PolicyKind::all() {
            let run = || {
                let mut cfg = ServerConfig::quick(12, true);
                cfg.policy = kind;
                Server::new(cfg, profiles.clone()).run()
            };
            let a = run();
            assert!(
                a.completed.total() > 10,
                "policy {} should complete queries, got {}",
                kind.name(),
                a.completed.total()
            );
            assert_eq!(
                a.throttle.levels(),
                kind.levels(&ServerConfig::quick(12, true).throttle),
                "policy {} reports the wrong stats shape",
                kind.name()
            );
            assert!(
                a.throttle.compilations_started > 0,
                "policy {} never saw a compilation",
                kind.name()
            );
            let b = run();
            assert_eq!(
                a.completed.total(),
                b.completed.total(),
                "policy {} not seed-stable",
                kind.name()
            );
            assert_eq!(a.throttle, b.throttle, "policy {} stats drift", kind.name());
        }
    }

    #[test]
    fn feedback_policies_admit_under_pressure_without_wedging() {
        // The PID and cost-based policies must keep making progress on a
        // multi-class, heavily-loaded run — queues drain, nothing deadlocks.
        let profiles = profiles();
        for kind in [
            crate::config::PolicyKind::Pid,
            crate::config::PolicyKind::CostBased,
        ] {
            let mut cfg = ServerConfig::quick(16, true).with_standard_classes();
            cfg.policy = kind;
            let metrics = Server::new(cfg, profiles.clone()).run();
            for class in &metrics.classes {
                assert!(
                    class.completed > 0,
                    "policy {} starved class {}",
                    kind.name(),
                    class.name
                );
            }
        }
    }
}
