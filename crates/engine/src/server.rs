//! The discrete-event DBMS server.

use crate::config::ServerConfig;
use crate::metrics::{FailureKind, RunMetrics};
use crate::profile::{CompileProfile, WorkloadProfiles};
use std::collections::HashMap;
use std::sync::Arc;
use throttledb_bufferpool::HitRateModel;
use throttledb_core::{GatewayLadder, LadderDecision, TaskId};
use throttledb_executor::{GrantManager, GrantOutcome, GrantRequestId};
use throttledb_membroker::{Clerk, MemoryBroker, SubcomponentKind};
use throttledb_plancache::PlanCache;
use throttledb_sim::{EventQueue, SimDuration, SimRng, SimTime};
use throttledb_workload::{ClientModel, Uniquifier};

/// Discrete events driving the simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A client submits its next query.
    Submit { client: u32 },
    /// One compilation memory-growth step completes.
    CompileStep { query: u64 },
    /// A gateway wait reached its timeout.
    CompileTimeout { query: u64, level: usize },
    /// A grant wait reached its timeout.
    GrantTimeout { query: u64 },
    /// A query finished executing.
    ExecFinish { query: u64 },
    /// Periodic broker recalculation / housekeeping.
    BrokerTick,
}

#[derive(Debug)]
struct Query {
    client: u32,
    template: String,
    profile: CompileProfile,
    task: TaskId,
    compile_step: u32,
    compile_bytes: u64,
    waiting_level: Option<usize>,
    grant_id: Option<GrantRequestId>,
    grant_requested: u64,
}

/// The simulated server: builds the paper's machine, runs the client
/// population, and returns the run's metrics.
pub struct Server {
    config: ServerConfig,
    profiles: Arc<WorkloadProfiles>,
    broker: Arc<MemoryBroker>,
    compile_clerk: Clerk,
    ladder: GatewayLadder,
    grants: GrantManager,
    plan_cache: PlanCache<String>,
    hit_model: HitRateModel,
    uniquifier: Uniquifier,
    client_model: ClientModel,
    rng: SimRng,
    queue: EventQueue<Event>,
    queries: HashMap<u64, Query>,
    task_to_query: HashMap<TaskId, u64>,
    grant_to_query: HashMap<GrantRequestId, u64>,
    next_query: u64,
    running_cpu_tasks: u32,
    metrics: RunMetrics,
    now: SimTime,
}

impl Server {
    /// Build a server from a configuration and pre-characterized profiles.
    pub fn new(config: ServerConfig, profiles: Arc<WorkloadProfiles>) -> Self {
        config.validate();
        let broker = MemoryBroker::new(config.broker.clone());
        let compile_clerk = broker.register(SubcomponentKind::Compilation);
        let exec_clerk = broker.register(SubcomponentKind::Execution);
        let cache_clerk = broker.register(SubcomponentKind::PlanCache);
        let exec_budget = broker.target_for_kind(SubcomponentKind::Execution);
        let grants = GrantManager::new(exec_budget, Some(exec_clerk));
        let plan_cache = PlanCache::new(256 << 20, Some(cache_clerk));
        let ladder = GatewayLadder::new(config.throttle.clone());
        let metrics = RunMetrics::new(
            config.slice,
            SimTime::ZERO + config.warmup,
            config.throttle.monitor_count(),
        );
        let mut client_model = config.client_model;
        client_model.oltp_fraction = config.oltp_fraction;
        Server {
            rng: SimRng::seed_from_u64(config.seed),
            profiles,
            broker,
            compile_clerk,
            ladder,
            grants,
            plan_cache,
            hit_model: HitRateModel::default(),
            uniquifier: Uniquifier::new(),
            client_model,
            queue: EventQueue::new(),
            queries: HashMap::new(),
            task_to_query: HashMap::new(),
            grant_to_query: HashMap::new(),
            next_query: 0,
            running_cpu_tasks: 0,
            metrics,
            now: SimTime::ZERO,
            config,
        }
    }

    /// Run the simulation to completion and return the metrics.
    pub fn run(mut self) -> RunMetrics {
        // Stagger client start-up over the first minute.
        for client in 0..self.config.clients {
            let offset = SimDuration::from_millis(self.rng.uniform_u64(0, 60_000));
            self.queue
                .schedule(SimTime::ZERO + offset, Event::Submit { client });
        }
        self.queue.schedule(SimTime::ZERO, Event::BrokerTick);

        let end = SimTime::ZERO + self.config.duration;
        while let Some(ev) = self.queue.pop() {
            if ev.at > end {
                break;
            }
            self.now = ev.at;
            match ev.payload {
                Event::Submit { client } => self.on_submit(client),
                Event::CompileStep { query } => self.on_compile_step(query),
                Event::CompileTimeout { query, level } => self.on_compile_timeout(query, level),
                Event::GrantTimeout { query } => self.on_grant_timeout(query),
                Event::ExecFinish { query } => self.on_exec_finish(query),
                Event::BrokerTick => self.on_broker_tick(),
            }
        }
        self.metrics.throttle = self.ladder.stats().clone();
        self.metrics
    }

    // --- event handlers ----------------------------------------------------

    fn on_submit(&mut self, client: u32) {
        let template = self
            .client_model
            .choose_template(&self.profiles.dss, &self.profiles.oltp, &mut self.rng)
            .clone();
        let profile = self
            .profiles
            .profile(&template.name)
            .jittered(&mut self.rng);
        let id = self.next_query;
        self.next_query += 1;
        let text = self.uniquifier.uniquify(&template.sql, &mut self.rng, id);

        // The uniquifier defeats the plan cache (as in the paper); a hit can
        // only happen for the rare literal-free diagnostic queries.
        if self.plan_cache.get(&text).is_some() {
            let query = Query {
                client,
                template: template.name.clone(),
                profile,
                task: self.ladder.begin_task(),
                compile_step: self.config.compile_steps,
                compile_bytes: 0,
                waiting_level: None,
                grant_id: None,
                grant_requested: 0,
            };
            self.queries.insert(id, query);
            self.finish_compile(id);
            return;
        }

        let task = self.ladder.begin_task();
        self.task_to_query.insert(task, id);
        self.queries.insert(
            id,
            Query {
                client,
                template: template.name.clone(),
                profile,
                task,
                compile_step: 0,
                compile_bytes: 0,
                waiting_level: None,
                grant_id: None,
                grant_requested: 0,
            },
        );
        self.running_cpu_tasks += 1;
        let step = self.compile_step_duration(&profile);
        self.queue
            .schedule(self.now + step, Event::CompileStep { query: id });
    }

    fn on_compile_step(&mut self, id: u64) {
        let Some(q) = self.queries.get(&id) else {
            return;
        };
        if q.waiting_level.is_some() {
            // A stale step event for a query that has since blocked.
            return;
        }
        let profile = q.profile;
        let delta = (profile.peak_compile_bytes / self.config.compile_steps as u64).max(1);

        // Out-of-memory: the machine genuinely has no room for this step.
        if self.broker.available_bytes() < delta {
            self.fail_query(id, FailureKind::OutOfMemory);
            return;
        }
        let (task, bytes, step) = {
            let q = self.queries.get_mut(&id).expect("query exists");
            q.compile_bytes += delta;
            q.compile_step += 1;
            (q.task, q.compile_bytes, q.compile_step)
        };
        self.compile_clerk.allocate(delta);
        self.metrics
            .compile_memory
            .record(self.now, self.compile_clerk.used_bytes());

        match self.ladder.report_memory(task, bytes, self.now) {
            LadderDecision::Proceed => {
                if step >= self.config.compile_steps {
                    self.finish_compile(id);
                } else {
                    let d = self.compile_step_duration(&profile);
                    self.queue
                        .schedule(self.now + d, Event::CompileStep { query: id });
                }
            }
            LadderDecision::Wait { level, timeout } => {
                if let Some(q) = self.queries.get_mut(&id) {
                    q.waiting_level = Some(level);
                }
                self.running_cpu_tasks = self.running_cpu_tasks.saturating_sub(1);
                self.queue.schedule(
                    self.now + timeout,
                    Event::CompileTimeout { query: id, level },
                );
            }
            LadderDecision::FinishBestEffort => {
                self.metrics.best_effort_plans += 1;
                self.finish_compile(id);
            }
        }
    }

    fn on_compile_timeout(&mut self, id: u64, level: usize) {
        let still_waiting = self
            .queries
            .get(&id)
            .map(|q| q.waiting_level == Some(level))
            .unwrap_or(false);
        if !still_waiting {
            return;
        }
        if let Some(q) = self.queries.get(&id) {
            self.ladder.timeout_task(q.task, self.now);
        }
        self.fail_query(id, FailureKind::CompileTimeout);
    }

    fn finish_compile(&mut self, id: u64) {
        let (task, compile_bytes, template, profile) = {
            let q = self.queries.get(&id).expect("query exists");
            (q.task, q.compile_bytes, q.template.clone(), q.profile)
        };
        // Compilation memory is freed when the plan is produced.
        self.compile_clerk.free(compile_bytes);
        self.metrics
            .compile_memory
            .record(self.now, self.compile_clerk.used_bytes());
        if let Some(q) = self.queries.get_mut(&id) {
            q.compile_bytes = 0;
        }
        self.task_to_query.remove(&task);
        let resumed = self.ladder.finish_task(task, self.now);
        self.resume_tasks(resumed);
        self.running_cpu_tasks = self.running_cpu_tasks.saturating_sub(1);

        // Cache the plan (uniquified text means this rarely helps — by design).
        self.plan_cache.insert(
            format!("{template}-{id}"),
            template,
            96 << 10,
            profile.compile_cpu_seconds,
        );

        // Ask for the execution memory grant.
        let requested = profile.exec_grant_bytes.max(1 << 20);
        let (grant_id, outcome) = self.grants.request(requested);
        if let Some(q) = self.queries.get_mut(&id) {
            q.grant_id = Some(grant_id);
            q.grant_requested = requested;
        }
        self.grant_to_query.insert(grant_id, id);
        match outcome {
            GrantOutcome::Granted { bytes } | GrantOutcome::Reduced { bytes } => {
                self.start_exec(id, bytes);
            }
            GrantOutcome::Queued => {
                self.queue.schedule(
                    self.now + self.config.grant_timeout,
                    Event::GrantTimeout { query: id },
                );
            }
        }
    }

    fn on_grant_timeout(&mut self, id: u64) {
        // Only fires if the grant was never given (start_exec removes the
        // mapping when it runs).
        let Some(q) = self.queries.get(&id) else {
            return;
        };
        let Some(grant_id) = q.grant_id else { return };
        if !self.grant_to_query.contains_key(&grant_id) {
            return;
        }
        if self.grants.cancel(grant_id) {
            self.grant_to_query.remove(&grant_id);
            self.fail_query(id, FailureKind::GrantTimeout);
        }
    }

    fn start_exec(&mut self, id: u64, granted_bytes: u64) {
        let Some(q) = self.queries.get(&id) else {
            return;
        };
        let profile = q.profile;
        let requested = q.grant_requested;
        if let Some(grant_id) = q.grant_id {
            self.grant_to_query.remove(&grant_id);
        }
        self.running_cpu_tasks += 1;

        // CPU time: parallelized over the machine, inflated by spills and by
        // CPU contention.
        let spill = if requested == 0 {
            1.0
        } else {
            let fraction = (granted_bytes as f64 / requested as f64).clamp(0.05, 1.0);
            1.0 + (1.0 / fraction - 1.0) * 0.45
        };
        let cpu_seconds =
            profile.exec_cpu_seconds * spill / self.config.exec_parallelism * self.load_factor();

        // I/O time: whatever memory is not claimed by compilation, grants and
        // caches acts as the page buffer pool.
        let pool_bytes = self
            .config
            .broker
            .brokered_bytes()
            .saturating_sub(self.broker.used_bytes());
        let touched =
            (profile.exec_footprint_bytes as f64 * self.config.io_touched_fraction) as u64;
        let io_seconds = self.hit_model.io_seconds(
            touched,
            pool_bytes,
            self.config.hot_working_set_bytes,
            self.config.io_bandwidth_bytes_per_sec,
        );

        let duration = SimDuration::from_secs_f64((cpu_seconds + io_seconds).max(1.0));
        self.queue
            .schedule(self.now + duration, Event::ExecFinish { query: id });
    }

    fn on_exec_finish(&mut self, id: u64) {
        let Some(q) = self.queries.remove(&id) else {
            return;
        };
        self.running_cpu_tasks = self.running_cpu_tasks.saturating_sub(1);
        if let Some(grant_id) = q.grant_id {
            let admitted = self.grants.release(grant_id);
            self.start_admitted(admitted);
        }
        self.metrics.record_completion(self.now);
        let think = self.client_model.think_time(&mut self.rng);
        self.schedule_submit(q.client, think);
    }

    fn on_broker_tick(&mut self) {
        let decisions = self.broker.recalculate(self.now);
        let constrained = decisions
            .iter()
            .any(|d| d.notification.target_bytes.is_some());
        let compile_target = if constrained {
            Some(self.broker.target_for_kind(SubcomponentKind::Compilation))
        } else {
            None
        };
        self.ladder.set_compilation_target(compile_target);
        self.grants
            .set_budget(self.broker.target_for_kind(SubcomponentKind::Execution));
        // The plan cache responds to pressure by shrinking toward its target.
        if let Some(target) = decisions
            .iter()
            .find(|d| d.notification.kind_of_component == SubcomponentKind::PlanCache)
            .and_then(|d| d.notification.target_bytes)
        {
            if self.plan_cache.used_bytes() > target {
                self.plan_cache.shrink_to(target);
            }
        }
        if self.now + self.config.broker_tick < SimTime::ZERO + self.config.duration {
            self.queue
                .schedule(self.now + self.config.broker_tick, Event::BrokerTick);
        }
    }

    // --- helpers -------------------------------------------------------------

    fn resume_tasks(&mut self, resumed: Vec<TaskId>) {
        for task in resumed {
            if let Some(&qid) = self.task_to_query.get(&task) {
                if let Some(q) = self.queries.get_mut(&qid) {
                    q.waiting_level = None;
                }
                self.running_cpu_tasks += 1;
                self.queue
                    .schedule(self.now, Event::CompileStep { query: qid });
            }
        }
    }

    fn start_admitted(&mut self, admitted: Vec<(GrantRequestId, GrantOutcome)>) {
        for (grant_id, outcome) in admitted {
            if let Some(&qid) = self.grant_to_query.get(&grant_id) {
                let bytes = match outcome {
                    GrantOutcome::Granted { bytes } | GrantOutcome::Reduced { bytes } => bytes,
                    GrantOutcome::Queued => continue,
                };
                self.start_exec(qid, bytes);
            }
        }
    }

    fn fail_query(&mut self, id: u64, kind: FailureKind) {
        let Some(q) = self.queries.remove(&id) else {
            return;
        };
        self.compile_clerk.free(q.compile_bytes);
        self.task_to_query.remove(&q.task);
        if q.waiting_level.is_none() && q.compile_step < self.config.compile_steps {
            self.running_cpu_tasks = self.running_cpu_tasks.saturating_sub(1);
        }
        let resumed = self.ladder.finish_task(q.task, self.now);
        self.resume_tasks(resumed);
        if let Some(grant_id) = q.grant_id {
            self.grant_to_query.remove(&grant_id);
            let admitted = self.grants.release(grant_id);
            self.start_admitted(admitted);
        }
        self.metrics.record_failure(self.now, kind);
        // "Those aborted queries likely need to be resubmitted to the system."
        let delay = self.client_model.retry_delay(&mut self.rng);
        self.schedule_submit(q.client, delay);
    }

    fn schedule_submit(&mut self, client: u32, delay: SimDuration) {
        let at = self.now + delay;
        if at <= SimTime::ZERO + self.config.duration {
            self.queue.schedule(at, Event::Submit { client });
        }
    }

    fn compile_step_duration(&mut self, profile: &CompileProfile) -> SimDuration {
        let per_step = profile.compile_cpu_seconds / self.config.compile_steps as f64;
        SimDuration::from_secs_f64((per_step * self.load_factor()).max(0.001))
    }

    fn load_factor(&self) -> f64 {
        (self.running_cpu_tasks as f64 / self.config.cpus as f64).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Arc<WorkloadProfiles> {
        Arc::new(WorkloadProfiles::characterize_sales(&ServerConfig::quick(
            8, true,
        )))
    }

    #[test]
    fn quick_run_completes_queries_and_is_deterministic() {
        let profiles = profiles();
        let run = |seed: u64| {
            let mut cfg = ServerConfig::quick(8, true);
            cfg.seed = seed;
            Server::new(cfg, profiles.clone()).run()
        };
        let a = run(1);
        assert!(
            a.completed.total() > 10,
            "an hour with 8 clients should complete queries, got {}",
            a.completed.total()
        );
        let b = run(1);
        assert_eq!(
            a.completed.total(),
            b.completed.total(),
            "same seed, same run"
        );
        let c = run(2);
        // A different seed gives a different (but same ballpark) run.
        assert!(c.completed.total() > 10);
    }

    #[test]
    fn throttled_run_engages_the_gateways() {
        let profiles = profiles();
        let metrics = Server::new(ServerConfig::quick(16, true), profiles).run();
        assert!(
            metrics.throttle.acquisitions.iter().sum::<u64>() > 0,
            "SALES compilations must acquire gateways"
        );
        assert!(metrics.compile_memory.max_value() > 100 << 20);
    }

    #[test]
    fn unthrottled_run_uses_more_compile_memory_at_peak() {
        let profiles = profiles();
        let throttled = Server::new(ServerConfig::quick(16, true), profiles.clone()).run();
        let unthrottled = Server::new(ServerConfig::quick(16, false), profiles).run();
        assert!(
            unthrottled.compile_memory.max_value() > throttled.compile_memory.max_value(),
            "throttling must cap concurrent compilation memory: {} vs {}",
            unthrottled.compile_memory.max_value(),
            throttled.compile_memory.max_value()
        );
        assert!(throttled.throttle.compilations_started >= throttled.completed.total());
    }
}
