//! The discrete-event DBMS server: event dispatch over the pipeline stages.
//!
//! The server owns the simulation state — clients, per-class admission
//! pools, the broker, the event queue — and routes each popped event to the
//! stage that handles it. All compile/grant/execute *policy* lives in the
//! [`crate::stages`] modules; what remains here is dispatch plus the shared
//! machine model (CPU load factor, submission scheduling).

use crate::config::ServerConfig;
use crate::fault::{FaultKind, FaultSpec};
use crate::metrics::{ArrivalSourceMetrics, ClassMetrics, RunMetrics};
use crate::profile::{CompileProfile, WorkloadProfiles};
use crate::shard::{unpack_arrival, ArrivalPlane};
use crate::stages::{ClassRuntime, Query, QueryOrigin};
use crate::trace::{TraceEvent, TraceSink};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use throttledb_bufferpool::HitRateModel;
use throttledb_executor::GrantOutcome;
use throttledb_executor::GrantRequestId;
use throttledb_membroker::{Clerk, MemoryBroker, SubcomponentKind};
use throttledb_plancache::PlanCache;
use throttledb_sim::{ArrivalSampler, EventQueue, SimDuration, SimRng, SimTime};
use throttledb_workload::{ClientModel, TemplateId, Uniquifier, WorkloadMix};

/// Discrete events driving the simulation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// A client submits its next query.
    Submit { client: u32 },
    /// A cohort-compressed client submits: the retry chain's state rides in
    /// the event, so an idle cohort member costs no per-client memory.
    CohortSubmit {
        client: u32,
        attempts: u32,
        first_at: SimTime,
    },
    /// The next query of an open-loop arrival source arrives. Exactly one
    /// such event is pending per source — the self-perpetuating
    /// next-arrival sample — regardless of the modeled population size.
    Arrival { source: u32 },
    /// One compilation memory-growth step completes.
    CompileStep { query: u64 },
    /// A gateway wait reached its timeout.
    CompileTimeout { query: u64, level: usize },
    /// A grant wait reached its timeout.
    GrantTimeout { query: u64 },
    /// A query finished executing.
    ExecFinish { query: u64 },
    /// Periodic broker recalculation / housekeeping.
    BrokerTick,
    /// An installed fault's window begins (index into the fault list).
    FaultBegin { index: u32 },
    /// An installed fault's window ends; its effects are reverted.
    FaultEnd { index: u32 },
    /// One allocation increment of an active memory-leak fault.
    LeakStep { index: u32 },
}

/// One step of the sharded merge loop (see `Server::shard_next`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardStep {
    /// Dispatch the timing wheel's head event.
    Wheel,
    /// Dispatch the given source's buffered front arrival.
    Source(u32),
    /// Receive one epoch from the generator shards before deciding.
    Pump,
    /// Nothing fires strictly before the boundary.
    Done,
}

/// One arrival decision's contribution to the streaming FNV-1a arrival
/// digest: 8 time bytes, 4 source bytes, 1 decision byte, little-endian.
/// A free function so the bulk-shed loop can fold into a register-held
/// accumulator without round-tripping through `self` per arrival.
#[inline]
fn fold_arrival_digest(mut h: u64, at_us: u64, source: u32, code: u8) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for byte in at_us.to_le_bytes() {
        h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    for byte in source.to_le_bytes() {
        h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    (h ^ code as u64).wrapping_mul(FNV_PRIME)
}

/// Plan-cache key: a compact, copyable stand-in for the query text the
/// paper's text-keyed cache would hash.
///
/// Lookups key on the FNV-1a digest of the submission's uniquified SQL;
/// insertions key on the (template, submission) pair that produced the
/// plan. The two variants can never collide, preserving the workload's
/// designed-in property that the uniquifier defeats the cache — while the
/// hot path stops cloning SQL strings entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum PlanKey {
    /// Digest of a submission's uniquified text (lookup side).
    Text(u64),
    /// A compiled plan's identity (insert side).
    Compiled(TemplateId, u64),
}

/// Runtime state of one open-loop arrival source.
///
/// The whole modeled population is this struct plus one pending wheel
/// event: the next-arrival sample. Each source draws from its own forked
/// RNG stream, so sources never perturb each other (or the closed-loop
/// workload stream).
pub(crate) struct SourceRuntime {
    /// This source's private RNG stream.
    pub rng: SimRng,
    /// Stateful sampler over the source's arrival process.
    pub sampler: ArrivalSampler,
    /// Queries of this source currently in the pipeline.
    pub in_flight: u32,
    /// Total arrivals offered (admitted + shed).
    pub arrivals: u64,
    /// Arrivals admitted into the compile→grant→execute pipeline.
    pub admitted: u64,
    /// Arrivals shed at the door (concurrency cap or breaker).
    pub shed: u64,
    /// Admitted arrivals that ran to completion.
    pub completed: u64,
    /// Admitted arrivals that failed out of the pipeline (terminal — open
    /// systems do not retry).
    pub failed: u64,
}

/// The simulated server: builds the paper's machine, runs the client
/// population, and returns the run's metrics.
pub struct Server {
    pub(crate) config: ServerConfig,
    pub(crate) profiles: Arc<WorkloadProfiles>,
    pub(crate) broker: Arc<MemoryBroker>,
    pub(crate) compile_clerk: Clerk,
    /// One admission-pool runtime per configured workload class.
    pub(crate) classes: Vec<ClassRuntime>,
    /// Client id -> class index (precomputed, deterministic).
    pub(crate) class_by_client: Vec<usize>,
    pub(crate) plan_cache: PlanCache<TemplateId, PlanKey>,
    pub(crate) hit_model: HitRateModel,
    pub(crate) uniquifier: Uniquifier,
    pub(crate) client_model: ClientModel,
    pub(crate) rng: SimRng,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) queries: HashMap<u64, Query>,
    /// (class, policy task handle) -> query id, for resuming admitted
    /// waiters.
    pub(crate) task_to_query: HashMap<(usize, u64), u64>,
    pub(crate) grant_to_query: HashMap<(usize, GrantRequestId), u64>,
    pub(crate) next_query: u64,
    pub(crate) running_cpu_tasks: u32,
    pub(crate) metrics: RunMetrics,
    pub(crate) now: SimTime,
    /// Number of clients currently in the closed loop (scenario phases
    /// raise and lower this between windows).
    pub(crate) active_clients: u32,
    /// The order clients are activated in when only part of the population
    /// participates: interleaves classes proportionally to their shares
    /// (see [`ServerConfig::activation_order`]).
    pub(crate) activation_order: Vec<u32>,
    /// Per-client participation flag: the first `active_clients` entries of
    /// `activation_order` are active.
    pub(crate) client_active: Vec<bool>,
    /// Per-client busy flag: true while the client has a pending submission
    /// event or an in-flight query. Prevents a re-activated client from
    /// running two closed loops at once.
    pub(crate) client_busy: Vec<bool>,
    /// The active workload mix submissions are sampled from.
    pub(crate) mix: WorkloadMix,
    /// Scenario knob: scales every class's grant-pool budget at each broker
    /// tick (1.0 = the configured budgets; < 1 models a degraded pool).
    pub(crate) grant_budget_scale: f64,
    /// Recorded admission/grant events, when tracing is enabled.
    pub(crate) trace: Option<Vec<TraceEvent>>,
    /// Streaming trace consumer, when installed (see
    /// [`Server::set_trace_sink`]): every recorded event is forwarded here
    /// as it happens, so a run can be serialized without buffering.
    pub(crate) trace_sink: Option<Rc<RefCell<dyn TraceSink>>>,
    /// Running compile-memory high-water mark since the last phase boundary
    /// (trace recording only).
    pub(crate) trace_peak: u64,
    /// Reused buffer for admission-policy releases (see `fail_query` /
    /// `finish_compile`): the release path appends admitted tasks here
    /// instead of allocating a vector per completed query.
    pub(crate) scratch_resumed: Vec<u64>,
    /// Reused buffer for grant-pool admissions, same discipline.
    pub(crate) scratch_admitted: Vec<(GrantRequestId, GrantOutcome)>,
    /// Installed fault specs (see [`crate::Server::install_faults`]).
    pub(crate) faults: Vec<FaultSpec>,
    /// Per-fault active flag; effect multipliers are recomputed from the
    /// active set on every begin/end so reverting is exact.
    pub(crate) fault_active: Vec<bool>,
    /// Ballast currently allocated per memory-leak fault (freed exactly
    /// when the fault clears).
    pub(crate) leak_allocated: Vec<u64>,
    /// The leak faults' broker clerk: a `Fixed` subcomponent the broker
    /// accounts for but never squeezes. Registered lazily when faults with
    /// leaks are installed.
    pub(crate) ballast_clerk: Option<Clerk>,
    /// Dedicated RNG stream for fault-effect jitter, seeded from the run
    /// seed but independent of the workload stream — a faulted run's
    /// client behaviour stays draw-for-draw comparable to its fault-free
    /// twin until the effects themselves diverge it.
    pub(crate) fault_rng: SimRng,
    /// Product of the active compile-stall multipliers (1.0 = no stall).
    pub(crate) compile_stall: f64,
    /// CPUs currently lost to slot-loss faults.
    pub(crate) lost_slots: u32,
    /// Product of the active grant-collapse scales (1.0 = no collapse).
    pub(crate) fault_grant_scale: f64,
    /// Number of currently active fault windows (completions during any
    /// window count toward goodput-under-fault).
    pub(crate) active_faults: u32,
    /// Consecutive failed/shed attempts per client (reset on success or
    /// when the chain is abandoned); indexes the backoff exponent.
    pub(crate) retry_attempts: Vec<u32>,
    /// When each client's current retry chain first submitted (the total
    /// query deadline is measured from here).
    pub(crate) first_attempt_at: Vec<SimTime>,
    /// Runtime state of the configured open-loop arrival sources.
    pub(crate) sources: Vec<SourceRuntime>,
    /// Streaming FNV-1a digest over every arrival's admission decision
    /// (time, source, outcome code). Two runs that agree on this digest
    /// made identical shed/admit decisions at identical instants — the
    /// cheap determinism witness for runs too large to trace.
    pub(crate) arrival_digest: u64,
    /// Fenceposts of the contiguous class ranges
    /// (see [`ServerConfig::class_bounds`]); cohort-compressed runs derive
    /// class membership from these instead of `class_by_client`.
    pub(crate) class_bounds: Vec<u32>,
    /// Whether a cohort-compressed population has been started; cohort
    /// runs require the population to stay constant afterwards.
    pub(crate) cohort_started: bool,
    /// The generator shards of a `shards > 1` run with arrival sources
    /// (see [`crate::shard`]); `None` runs the single-threaded path.
    pub(crate) arrival_plane: Option<ArrivalPlane>,
}

impl Server {
    /// Build a server from a configuration and pre-characterized profiles.
    pub fn new(config: ServerConfig, profiles: Arc<WorkloadProfiles>) -> Self {
        config.validate();
        let broker = MemoryBroker::new(config.broker.clone());
        let compile_clerk = broker.register(SubcomponentKind::Compilation);
        let exec_clerk = broker.register(SubcomponentKind::Execution);
        let cache_clerk = broker.register(SubcomponentKind::PlanCache);
        let exec_budget = broker.target_for_kind(SubcomponentKind::Execution);
        let compile_budget = broker.target_for_kind(SubcomponentKind::Compilation);
        let total_share: f64 = config.classes.iter().map(|c| c.client_share).sum();
        let classes = config
            .classes
            .iter()
            .map(|spec| {
                ClassRuntime::new(
                    spec.clone(),
                    &config.throttle,
                    exec_budget,
                    &exec_clerk,
                    config.policy,
                    crate::stages::scaled_budget(compile_budget, spec.client_share / total_share),
                    config.breaker,
                )
            })
            .collect();
        // Cohort-compressed runs materialize no per-client state at all:
        // class membership comes from the contiguous bounds and retry state
        // rides inside the pending submit events.
        let cohort = config.cohort_compressed;
        let class_by_client = if cohort {
            Vec::new()
        } else {
            config.class_assignment()
        };
        let class_bounds = config.class_bounds();
        // Every source gets a private stream forked off a dedicated base —
        // never off the workload RNG, so configuring sources leaves the
        // closed-loop draw sequence untouched.
        let mut source_base = SimRng::seed_from_u64(config.seed ^ 0xA221_4A15_0000_0001);
        let sources = config
            .arrivals
            .iter()
            .enumerate()
            .map(|(index, src)| SourceRuntime {
                rng: source_base.fork(index as u64),
                sampler: src.process.sampler(),
                in_flight: 0,
                arrivals: 0,
                admitted: 0,
                shed: 0,
                completed: 0,
                failed: 0,
            })
            .collect();
        let plan_cache = PlanCache::new(256 << 20, Some(cache_clerk));
        let mut metrics = RunMetrics::new(
            config.slice,
            SimTime::ZERO + config.warmup,
            config.policy.levels(&config.throttle),
        );
        metrics.run_duration = config.duration;
        let mut client_model = config.client_model;
        client_model.oltp_fraction = config.oltp_fraction;
        let clients = if cohort { 0 } else { config.clients as usize };
        Server {
            rng: SimRng::seed_from_u64(config.seed),
            profiles,
            broker,
            compile_clerk,
            classes,
            class_by_client,
            plan_cache,
            hit_model: HitRateModel::default(),
            uniquifier: Uniquifier::new(),
            client_model,
            queue: EventQueue::new(),
            queries: HashMap::new(),
            task_to_query: HashMap::new(),
            grant_to_query: HashMap::new(),
            next_query: 0,
            running_cpu_tasks: 0,
            metrics,
            now: SimTime::ZERO,
            active_clients: 0,
            activation_order: if cohort {
                Vec::new()
            } else {
                config.activation_order()
            },
            client_active: vec![false; clients],
            client_busy: vec![false; clients],
            mix: WorkloadMix::paper_default(config.oltp_fraction),
            grant_budget_scale: 1.0,
            trace: None,
            trace_sink: None,
            trace_peak: 0,
            scratch_resumed: Vec::new(),
            scratch_admitted: Vec::new(),
            faults: Vec::new(),
            fault_active: Vec::new(),
            leak_allocated: Vec::new(),
            ballast_clerk: None,
            // Independent stream: derived from the run seed, but no draw is
            // taken from the workload RNG.
            fault_rng: SimRng::seed_from_u64(config.seed ^ 0xC4A0_55EED_u64),
            compile_stall: 1.0,
            lost_slots: 0,
            fault_grant_scale: 1.0,
            active_faults: 0,
            retry_attempts: vec![0; clients],
            first_attempt_at: vec![SimTime::ZERO; clients],
            sources,
            // FNV-1a offset basis: the empty-stream digest.
            arrival_digest: 0xcbf2_9ce4_8422_2325,
            class_bounds,
            cohort_started: false,
            arrival_plane: None,
            config,
        }
    }

    /// Run the simulation to completion and return the metrics.
    pub fn run(mut self) -> RunMetrics {
        self.set_active_clients(self.config.clients);
        self.begin();
        self.run_until(SimTime::ZERO + self.config.duration);
        self.finish()
    }

    // --- scenario runner hooks --------------------------------------------
    //
    // `run()` is built from these four public hooks so an external driver
    // (the `throttledb-scenario` runner) can interleave phase mutations with
    // simulation windows: begin once, then alternate `set_*` mutators with
    // `run_until` at phase boundaries, and `finish` at the end.

    /// Start the server's housekeeping (the periodic broker tick) and the
    /// open-loop arrival sources. Call once, after configuring the initial
    /// client population.
    pub fn begin(&mut self) {
        self.queue.schedule(self.now, Event::BrokerTick);
        if self.config.shards > 1 && !self.sources.is_empty() {
            self.begin_sharded();
            return;
        }
        let end = SimTime::ZERO + self.config.duration;
        for (index, src) in self.sources.iter_mut().enumerate() {
            let gap = src.sampler.next_gap(&mut src.rng, self.now);
            let at = self.now + gap;
            if at < end {
                self.queue.schedule(
                    at,
                    Event::Arrival {
                        source: index as u32,
                    },
                );
            }
        }
    }

    /// Start the generator shards of a `shards > 1` run: hand each
    /// worker clones of its sources' RNG streams and samplers (the
    /// spine's own copies go untouched from here), then reserve the
    /// first-arrival sequence numbers in source index order — exactly
    /// the numbers the single-threaded `begin` would have consumed.
    fn begin_sharded(&mut self) {
        let end = SimTime::ZERO + self.config.duration;
        let generators = self
            .sources
            .iter()
            .map(|src| (src.rng.clone(), src.sampler.clone()))
            .collect();
        let mut plane = ArrivalPlane::spawn(
            self.config.shards as usize,
            generators,
            self.now,
            end,
            self.config.broker_tick,
        );
        for index in 0..self.sources.len() {
            if plane.first_exists()[index] {
                plane.slots[index].reserved = Some(self.queue.reserve_seq());
            }
        }
        self.arrival_plane = Some(plane);
    }

    /// Advance the simulation, processing every event scheduled strictly
    /// before `until`, then park the clock at `until`. Events at or beyond
    /// the boundary stay queued, so a later call picks up exactly where
    /// this one stopped.
    pub fn run_until(&mut self, until: SimTime) {
        if let Some(mut plane) = self.arrival_plane.take() {
            self.run_until_sharded(until, &mut plane);
            self.arrival_plane = Some(plane);
            return;
        }
        while let Some(ev) = self.queue.pop_before(until) {
            self.now = ev.at;
            self.dispatch(ev.payload);
        }
        self.now = self.now.max(until);
    }

    /// Route one popped event to its handler.
    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Submit { client } => self.on_submit(client),
            Event::CohortSubmit {
                client,
                attempts,
                first_at,
            } => self.on_cohort_submit(client, attempts, first_at),
            Event::Arrival { source } => self.on_arrival(source),
            Event::CompileStep { query } => self.on_compile_step(query),
            Event::CompileTimeout { query, level } => self.on_compile_timeout(query, level),
            Event::GrantTimeout { query } => self.on_grant_timeout(query),
            Event::ExecFinish { query } => self.on_exec_finish(query),
            Event::BrokerTick => self.on_broker_tick(),
            Event::FaultBegin { index } => self.on_fault_begin(index),
            Event::FaultEnd { index } => self.on_fault_end(index),
            Event::LeakStep { index } => self.on_leak_step(index),
        }
    }

    /// The sharded event loop: merge the timing wheel's head with the
    /// per-source arrival buffers into one global `(time, seq)` order,
    /// pumping the generator shards whenever an unsealed frontier could
    /// still precede the best candidate. Byte-identical to the
    /// single-threaded loop by the seq-reservation protocol (see
    /// [`crate::shard`]).
    fn run_until_sharded(&mut self, until: SimTime, plane: &mut ArrivalPlane) {
        loop {
            match self.shard_next(plane, until) {
                ShardStep::Pump => plane.pump(),
                ShardStep::Done => break,
                ShardStep::Wheel => {
                    let ev = self.queue.pop().expect("peeked wheel event pops");
                    self.now = ev.at;
                    self.dispatch(ev.payload);
                }
                ShardStep::Source(source) => {
                    let s = source as usize;
                    let packed = plane.slots[s]
                        .front()
                        .expect("source candidate has a buffered head");
                    plane.slots[s].consume(1);
                    let (at, has_next) = unpack_arrival(packed);
                    self.now = SimTime::from_micros(at);
                    self.queue.external_pop(self.now);
                    self.arrival_decision(source);
                    // Reserve the next arrival's seq *after* the
                    // admission pipeline's own schedules, where the
                    // single-threaded path schedules the next arrival.
                    plane.slots[s].reserved = if has_next {
                        Some(self.queue.reserve_seq())
                    } else {
                        None
                    };
                    if self.sources[s].in_flight >= self.config.arrivals[s].max_in_flight {
                        self.drain_shed(plane, s, until);
                    }
                }
            }
        }
        self.now = self.now.max(until);
    }

    /// Pick the next sharded-loop action (see `run_until_sharded`): the
    /// earliest `(time, seq)` key over the wheel head and the per-source
    /// buffer fronts — released only if no unsealed source could still
    /// precede it and it lies before `until` — else pump or stop.
    fn shard_next(&self, plane: &ArrivalPlane, until: SimTime) -> ShardStep {
        let until_key = (until.as_micros(), 0u64);
        // Best buffered arrival: per-source fronts carry their reserved
        // seq, and within a source time and seq are both increasing.
        let mut best: Option<((u64, u64), u32)> = None;
        // Frontier of the sources whose next arrival time is still
        // unknown: it fires at `(>= seal, reserved seq)`, so the exact
        // safety bound is the min of those keys.
        let mut blocked: Option<(u64, u64)> = None;
        for (s, slot) in plane.slots.iter().enumerate() {
            let Some(seq) = slot.reserved else { continue };
            match slot.front() {
                Some(packed) => {
                    let key = ((unpack_arrival(packed).0, seq), s as u32);
                    if best.map_or(true, |b| key < b) {
                        best = Some(key);
                    }
                }
                None => {
                    let key = (plane.seals[slot.shard], seq);
                    if blocked.map_or(true, |b| key < b) {
                        blocked = Some(key);
                    }
                }
            }
        }
        let wheel = self
            .queue
            .peek_stamp()
            .map(|(at, seq)| (at.as_micros(), seq));
        let (key, step) = match (wheel, best) {
            (Some(w), Some((b, s))) if b < w => (b, ShardStep::Source(s)),
            (Some(w), _) => (w, ShardStep::Wheel),
            (None, Some((b, s))) => (b, ShardStep::Source(s)),
            (None, None) => {
                // Nothing runnable. If an unknown arrival could still land
                // before the boundary, wait for it; otherwise we are done.
                return match blocked {
                    Some(b) if b < until_key => ShardStep::Pump,
                    _ => ShardStep::Done,
                };
            }
        };
        if key >= until_key {
            // The candidate parks at the boundary — but only once no
            // unknown arrival can precede the boundary either.
            return match blocked {
                Some(b) if b < until_key => ShardStep::Pump,
                _ => ShardStep::Done,
            };
        }
        match blocked {
            Some(b) if b <= key => ShardStep::Pump,
            _ => step,
        }
    }

    /// Bulk-shed fast path: while a source sits at its concurrency cap,
    /// its arrivals are pure sheds — a counter bump, a digest fold and
    /// seq bookkeeping, with no RNG draws, no trace events and no wheel
    /// mutations. Every bound the merge compares against is therefore
    /// *stable* across the drain except this source's own key, so the
    /// whole burst is dispatched against one precomputed bound instead
    /// of re-running the full candidate selection per arrival.
    fn drain_shed(&mut self, plane: &mut ArrivalPlane, s: usize, until: SimTime) {
        debug_assert!(
            self.sources[s].in_flight >= self.config.arrivals[s].max_in_flight,
            "drain_shed entered below the concurrency cap"
        );
        let mut bound = (until.as_micros(), 0u64);
        if let Some((at, seq)) = self.queue.peek_stamp() {
            bound = bound.min((at.as_micros(), seq));
        }
        for (o, slot) in plane.slots.iter().enumerate() {
            if o == s {
                continue;
            }
            let Some(seq) = slot.reserved else { continue };
            let key = match slot.front() {
                Some(packed) => (unpack_arrival(packed).0, seq),
                None => (plane.seals[slot.shard], seq),
            };
            bound = bound.min(key);
        }
        // The burst itself never schedules, pops or completes anything, so
        // `in_flight` stays at the cap and the queue's internal state is
        // frozen: each arrival is a digest fold plus counter bumps. The
        // per-arrival queue traffic (one `external_pop` + one
        // `reserve_seq`) collapses into a single `external_batch` because
        // the reservations a pure run takes are consecutive from
        // `peek_seq` — arrival `i > 0`'s merge key is simply
        // `(at_i, base + i - 1)`.
        let slot = &mut plane.slots[s];
        let Some(first_seq) = slot.reserved else {
            return;
        };
        let base = self.queue.peek_seq();
        let mut key_seq = first_seq;
        let mut popped = 0u64;
        let mut last_at = 0u64;
        let mut exhausted = false;
        let mut digest = self.arrival_digest;
        while let Some(run) = slot.front_run() {
            let mut taken = 0usize;
            let mut stop = false;
            for &packed in run {
                let (at, has_next) = unpack_arrival(packed);
                if (at, key_seq) >= bound {
                    stop = true;
                    break;
                }
                taken += 1;
                digest = fold_arrival_digest(digest, at, s as u32, 1);
                last_at = at;
                popped += 1;
                if !has_next {
                    exhausted = true;
                    stop = true;
                    break;
                }
                key_seq = base + popped - 1;
            }
            slot.consume(taken);
            if stop {
                break;
            }
        }
        if popped == 0 {
            return;
        }
        let reserved = popped - exhausted as u64;
        slot.reserved = (!exhausted).then(|| base + reserved - 1);
        self.now = SimTime::from_micros(last_at);
        self.queue.external_batch(popped, reserved, self.now);
        self.arrival_digest = digest;
        let src = &mut self.sources[s];
        src.arrivals += popped;
        src.shed += popped;
    }

    /// Resize the active client population to `n` (capped at the configured
    /// maximum). Clients are (de)activated in the proportional-interleave
    /// order of [`ServerConfig::activation_order`], so a partial population
    /// covers every workload class by share instead of starving the later
    /// classes. New clients submit their first query within the next
    /// simulated minute; removed clients leave the closed loop as soon as
    /// their in-flight work completes.
    pub fn set_active_clients(&mut self, n: u32) {
        if self.config.cohort_compressed {
            self.set_active_cohort(n);
            return;
        }
        let n = n.min(self.config.clients) as usize;
        for idx in 0..self.activation_order.len() {
            let client = self.activation_order[idx] as usize;
            let want = idx < n;
            if want && !self.client_active[client] {
                self.client_active[client] = true;
                if !self.client_busy[client] {
                    let offset = SimDuration::from_millis(self.rng.uniform_u64(0, 60_000));
                    self.queue.schedule(
                        self.now + offset,
                        Event::Submit {
                            client: client as u32,
                        },
                    );
                    self.client_busy[client] = true;
                }
            } else if !want && self.client_active[client] {
                self.client_active[client] = false;
            }
        }
        self.active_clients = n as u32;
    }

    /// Start (or re-assert) a cohort-compressed population of `n` clients.
    ///
    /// The activation order and the per-client first-submission offsets are
    /// drawn exactly as the materialized path draws them — same RNG, same
    /// sequence — then the order is dropped: what remains is one pending
    /// [`Event::CohortSubmit`] per active client. Cohort populations are
    /// constant: repeating the same `n` is a no-op, changing it panics
    /// (resizing would need the per-client participation vectors the mode
    /// exists to avoid).
    fn set_active_cohort(&mut self, n: u32) {
        let n = n.min(self.config.clients);
        if self.cohort_started {
            assert_eq!(
                n, self.active_clients,
                "cohort-compressed runs require a constant population"
            );
            return;
        }
        self.cohort_started = true;
        let order = self.config.activation_order();
        for &client in order.iter().take(n as usize) {
            let offset = SimDuration::from_millis(self.rng.uniform_u64(0, 60_000));
            self.queue.schedule(
                self.now + offset,
                Event::CohortSubmit {
                    client,
                    attempts: 0,
                    first_at: SimTime::ZERO,
                },
            );
        }
        self.active_clients = n;
    }

    /// Schedule a cohort client's next submission, bounded by the run's
    /// end exactly like [`Server::schedule_submit`] (cohort populations are
    /// constant, so the materialized path's `client_active` check is
    /// trivially true).
    pub(crate) fn schedule_cohort_submit(
        &mut self,
        client: u32,
        attempts: u32,
        first_at: SimTime,
        delay: SimDuration,
    ) {
        let at = self.now + delay;
        if at < SimTime::ZERO + self.config.duration {
            self.queue.schedule(
                at,
                Event::CohortSubmit {
                    client,
                    attempts,
                    first_at,
                },
            );
        }
    }

    /// Dispatch a cohort client's submission: a fresh chain (attempts = 0)
    /// starts its total-deadline clock now, mirroring the materialized
    /// path's `first_attempt_at` bookkeeping.
    fn on_cohort_submit(&mut self, client: u32, attempts: u32, first_at: SimTime) {
        let first_at = if attempts == 0 { self.now } else { first_at };
        self.submit_query(QueryOrigin::Cohort {
            client,
            attempts,
            first_at,
        });
    }

    /// One open-loop arrival: decide admission, fold the decision into the
    /// streaming digest, and sample the source's next arrival.
    ///
    /// Order matters for cost: the concurrency cap is checked *before* any
    /// query content is drawn, so an overloaded source sheds at one cheap
    /// event (~a digest fold) per arrival instead of paying template
    /// selection and uniquification for work it then discards.
    fn on_arrival(&mut self, source: u32) {
        self.arrival_decision(source);
        let end = SimTime::ZERO + self.config.duration;
        let s = source as usize;
        let src = &mut self.sources[s];
        let gap = src.sampler.next_gap(&mut src.rng, self.now);
        let at = self.now + gap;
        if at < end {
            self.queue.schedule(at, Event::Arrival { source });
        }
    }

    /// Decide one arrival's admission at `self.now`, update the source's
    /// counters and fold the decision into the streaming digest. Shared
    /// verbatim by the single-threaded and sharded dispatch paths, so
    /// the two can never drift. Returns the decision code.
    fn arrival_decision(&mut self, source: u32) -> u8 {
        let s = source as usize;
        self.sources[s].arrivals += 1;
        let code: u8 = if self.sources[s].in_flight >= self.config.arrivals[s].max_in_flight {
            self.sources[s].shed += 1;
            1 // shed at the concurrency cap, before any draws
        } else if self.submit_query(QueryOrigin::Source { source }) {
            self.sources[s].in_flight += 1;
            self.sources[s].admitted += 1;
            0 // admitted into the pipeline
        } else {
            self.sources[s].shed += 1;
            2 // shed by the class breaker
        };
        self.fold_arrival(self.now, source, code);
        code
    }

    /// Fold one arrival decision into the streaming FNV-1a digest.
    fn fold_arrival(&mut self, at: SimTime, source: u32, code: u8) {
        self.arrival_digest =
            fold_arrival_digest(self.arrival_digest, at.as_micros(), source, code);
    }

    /// Replace the workload mix submissions are sampled from. TPC-H-like
    /// weight is only effective when the server's profiles were
    /// characterized with the TPC-H-like templates
    /// (see [`WorkloadProfiles::characterize_full`]).
    pub fn set_workload_mix(&mut self, mix: WorkloadMix) {
        mix.validate();
        self.mix = mix;
    }

    /// Override the mean think time of the client population (burst phases
    /// shorten it; recovery phases restore the configured value).
    pub fn set_mean_think_time(&mut self, mean: SimDuration) {
        assert!(!mean.is_zero(), "mean think time must be positive");
        self.client_model.mean_think_time = mean;
    }

    /// Scale every class's execution-grant budget (1.0 = configured
    /// budgets). Takes effect at the next broker tick, within one
    /// `broker_tick` interval. Scenario phases use this to model a
    /// degrading resource pool.
    pub fn set_grant_budget_scale(&mut self, scale: f64) {
        assert!(scale > 0.0, "grant budget scale must be positive");
        self.grant_budget_scale = scale;
    }

    /// Consume the server and return the run's metrics.
    pub fn finish(self) -> RunMetrics {
        self.finalize_metrics()
    }

    // --- fault injection --------------------------------------------------

    /// Install a set of timed faults (see [`FaultSpec`]). Call once, before
    /// [`Server::begin`]: each fault becomes a pair of begin/end events on
    /// the wheel, so injection is part of the deterministic event order and
    /// replays byte-identically. Faults whose windows extend past the run
    /// simply never clear (their effects last to the end).
    pub fn install_faults(&mut self, faults: &[FaultSpec]) {
        if faults.is_empty() {
            return;
        }
        assert!(self.faults.is_empty(), "faults already installed");
        for (index, fault) in faults.iter().enumerate() {
            fault.validate();
            assert!(
                !(self.config.cohort_compressed
                    && matches!(fault.kind, FaultKind::ClientSurge { .. })),
                "client-surge faults resize the population, which cohort-compressed runs forbid"
            );
            self.faults.push(*fault);
            self.fault_active.push(false);
            self.leak_allocated.push(0);
            self.queue.schedule(
                fault.start,
                Event::FaultBegin {
                    index: index as u32,
                },
            );
            self.queue.schedule(
                fault.end(),
                Event::FaultEnd {
                    index: index as u32,
                },
            );
        }
        if self
            .faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::MemoryLeak { .. }))
            && self.ballast_clerk.is_none()
        {
            // Fixed: the broker accounts for the ballast (available_bytes
            // shrinks, pressure rises) but never asks it to shrink —
            // exactly how a leak behaves.
            self.ballast_clerk = Some(self.broker.register(SubcomponentKind::Fixed));
        }
    }

    fn on_fault_begin(&mut self, index: u32) {
        let i = index as usize;
        let spec = self.faults[i];
        self.fault_active[i] = true;
        self.active_faults += 1;
        self.trace_push(TraceEvent::FaultInjected {
            at: self.now,
            fault: index,
        });
        self.recompute_fault_effects();
        match spec.kind {
            FaultKind::MemoryLeak { .. } => {
                self.queue.schedule(self.now, Event::LeakStep { index });
            }
            FaultKind::ClientSurge { extra_clients } => {
                let n = self.active_clients.saturating_add(extra_clients);
                self.set_active_clients(n);
            }
            FaultKind::CompileStall { .. }
            | FaultKind::SlotLoss { .. }
            | FaultKind::GrantCollapse { .. } => {}
        }
    }

    fn on_fault_end(&mut self, index: u32) {
        let i = index as usize;
        if !self.fault_active[i] {
            return;
        }
        let spec = self.faults[i];
        self.fault_active[i] = false;
        self.active_faults = self.active_faults.saturating_sub(1);
        self.trace_push(TraceEvent::FaultCleared {
            at: self.now,
            fault: index,
        });
        self.recompute_fault_effects();
        match spec.kind {
            FaultKind::MemoryLeak { .. } => {
                let leaked = std::mem::take(&mut self.leak_allocated[i]);
                if leaked > 0 {
                    if let Some(clerk) = self.ballast_clerk.as_ref() {
                        clerk.free(leaked);
                    }
                }
            }
            FaultKind::ClientSurge { extra_clients } => {
                let n = self.active_clients.saturating_sub(extra_clients);
                self.set_active_clients(n);
            }
            FaultKind::CompileStall { .. }
            | FaultKind::SlotLoss { .. }
            | FaultKind::GrantCollapse { .. } => {}
        }
    }

    fn on_leak_step(&mut self, index: u32) {
        let i = index as usize;
        if !self.fault_active[i] {
            return;
        }
        let spec = self.faults[i];
        let FaultKind::MemoryLeak { total_bytes, steps } = spec.kind else {
            return;
        };
        let per_step = (total_bytes / steps as u64).max(1);
        // Jitter each increment from the dedicated fault stream; the ramp
        // stays deterministic and never overshoots the configured total.
        let jittered = (per_step as f64 * self.fault_rng.jitter(0.25)) as u64;
        let remaining = total_bytes.saturating_sub(self.leak_allocated[i]);
        let amount = jittered.clamp(1, remaining.max(1)).min(remaining);
        if amount > 0 {
            if let Some(clerk) = self.ballast_clerk.as_ref() {
                clerk.allocate(amount);
            }
            self.leak_allocated[i] += amount;
        }
        if self.leak_allocated[i] < total_bytes {
            let interval =
                SimDuration::from_micros((spec.duration.as_micros() / steps as u64).max(1_000_000));
            let next = self.now + interval;
            if next < spec.end() {
                self.queue.schedule(next, Event::LeakStep { index });
            }
        }
    }

    /// Recompute the effect multipliers from the set of currently active
    /// faults. Doing this from scratch on every begin/end keeps reverting
    /// exact (no drifting inverse floating-point updates).
    fn recompute_fault_effects(&mut self) {
        let mut stall = 1.0;
        let mut lost: u32 = 0;
        let mut grant = 1.0;
        for (i, fault) in self.faults.iter().enumerate() {
            if !self.fault_active[i] {
                continue;
            }
            match fault.kind {
                FaultKind::CompileStall { multiplier } => stall *= multiplier,
                FaultKind::SlotLoss { slots } => lost = lost.saturating_add(slots),
                FaultKind::GrantCollapse { scale } => grant *= scale,
                FaultKind::MemoryLeak { .. } | FaultKind::ClientSurge { .. } => {}
            }
        }
        self.compile_stall = stall;
        self.lost_slots = lost.min(self.config.cpus - 1);
        self.fault_grant_scale = grant;
    }

    // --- observers --------------------------------------------------------

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The metrics accumulated so far (scenario phase reports snapshot
    /// these at boundaries).
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Total queries submitted so far.
    pub fn queries_submitted(&self) -> u64 {
        self.next_query
    }

    /// Total open-loop arrivals offered so far, across every source
    /// (admitted + shed). Scenario phase reports snapshot this at
    /// boundaries.
    pub fn arrivals_offered(&self) -> u64 {
        self.sources.iter().map(|s| s.arrivals).sum()
    }

    /// The number of clients currently in the closed loop.
    pub fn active_clients(&self) -> u32 {
        self.active_clients
    }

    /// Total simulation events dispatched so far — the sweep harness
    /// divides this by wall time for an events/sec throughput figure.
    pub fn events_dispatched(&self) -> u64 {
        self.queue.dispatched()
    }

    /// The most events that were ever pending at once in the event queue.
    pub fn queue_peak_depth(&self) -> usize {
        self.queue.peak_len()
    }

    // --- trace recording --------------------------------------------------

    /// Start recording the admission/grant event stream
    /// (see [`TraceEvent`]).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Install a streaming consumer that observes every recorded event as
    /// it happens (see [`TraceSink`]). A sink works with or without the
    /// buffered recording of [`Server::enable_trace`]: the v2 binary
    /// writer installs only a sink so multi-million-event runs serialize
    /// at O(1) memory, while tests install both to prove the two surfaces
    /// see the same stream.
    pub fn set_trace_sink(&mut self, sink: Rc<RefCell<dyn TraceSink>>) {
        self.trace_sink = Some(sink);
    }

    /// Take the recorded events, leaving recording enabled but empty.
    /// Returns an empty vector if tracing was never enabled.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match self.trace.as_mut() {
            Some(events) => std::mem::take(events),
            None => Vec::new(),
        }
    }

    /// Record a phase boundary: emits a [`TraceEvent::PhaseStart`] and
    /// resets the compile-memory high-water mark that
    /// [`TraceEvent::CompilePeak`] events are measured against.
    pub fn trace_phase_start(&mut self, name: &str, clients: u32) {
        self.trace_peak = 0;
        let at = self.now;
        self.trace_push(TraceEvent::PhaseStart {
            at,
            name: name.to_string(),
            clients,
        });
    }

    /// Record the end-of-run marker. The scenario runner calls this after
    /// the last phase so buffered and streaming consumers both observe the
    /// final [`TraceEvent::End`] at the run's closing timestamp.
    pub fn trace_end(&mut self) {
        let at = self.now;
        self.trace_push(TraceEvent::End { at });
    }

    /// Whether any trace consumer (buffered vector or streaming sink) is
    /// attached. Gates the derived events — e.g. [`TraceEvent::CompilePeak`]
    /// — that only exist for trace readers.
    fn trace_enabled(&self) -> bool {
        self.trace.is_some() || self.trace_sink.is_some()
    }

    /// Hand `event` to every attached trace consumer: the streaming sink
    /// first (it observes the event by reference), then the buffered
    /// vector. No consumers attached means the event is dropped.
    pub(crate) fn trace_push(&mut self, event: TraceEvent) {
        if let Some(sink) = self.trace_sink.as_ref() {
            sink.borrow_mut().event(&event);
        }
        if let Some(events) = self.trace.as_mut() {
            events.push(event);
        }
    }

    /// Record the aggregate compile-memory gauge, plus a trace peak event
    /// when it reaches a new high since the last phase boundary. Every
    /// compile-memory sample must flow through here so the gauge and the
    /// trace agree on per-phase peaks.
    pub(crate) fn record_compile_gauge(&mut self) {
        let used = self.compile_clerk.used_bytes();
        self.metrics.compile_memory.record(self.now, used);
        if self.trace_enabled() && used > self.trace_peak {
            self.trace_peak = used;
            self.trace_push(TraceEvent::CompilePeak {
                at: self.now,
                bytes: used,
            });
        }
    }

    // --- shared machine model ---------------------------------------------

    /// The class index of `client`. Materialized populations read the
    /// precomputed per-client vector; cohort-compressed ones derive it from
    /// the contiguous class bounds (same assignment, no per-client memory).
    pub(crate) fn class_of(&self, client: u32) -> usize {
        if self.config.cohort_compressed {
            self.class_bounds.partition_point(|&b| b <= client) - 1
        } else {
            self.class_by_client[client as usize]
        }
    }

    pub(crate) fn schedule_submit(&mut self, client: u32, delay: SimDuration) {
        let at = self.now + delay;
        // Strict bound to match run_until's exclusive boundary: an event at
        // exactly `duration` would never be popped.
        if self.client_active[client as usize] && at < SimTime::ZERO + self.config.duration {
            self.queue.schedule(at, Event::Submit { client });
            self.client_busy[client as usize] = true;
        } else {
            // The client leaves the closed loop (deactivated by a scenario
            // phase, or the run is over); a later phase may re-admit it.
            self.client_busy[client as usize] = false;
        }
    }

    pub(crate) fn compile_step_duration(&mut self, profile: &CompileProfile) -> SimDuration {
        let per_step = profile.compile_cpu_seconds / self.config.compile_steps as f64;
        // An active compile-stall fault multiplies the planner's service
        // time (self.compile_stall is 1.0 otherwise).
        SimDuration::from_secs_f64((per_step * self.load_factor() * self.compile_stall).max(0.001))
    }

    pub(crate) fn load_factor(&self) -> f64 {
        // Slot-loss faults shrink the effective machine; at least one CPU
        // always survives (see recompute_fault_effects).
        let cpus = (self.config.cpus - self.lost_slots).max(1);
        (self.running_cpu_tasks as f64 / cpus as f64).max(1.0)
    }

    /// A query's attempt failed or was shed: route the setback to its
    /// origin. Closed-loop clients (materialized or cohort-compressed)
    /// either schedule the capped exponential-backoff retry or — when the
    /// retry budget or the total query deadline is exhausted — abandon the
    /// chain and think about fresh work. The two closed-loop paths make
    /// draw-for-draw identical RNG decisions; only where the retry state
    /// lives differs. Open-loop arrivals never retry: the source's
    /// in-flight slot is simply released.
    pub(crate) fn reschedule_after_setback(&mut self, origin: QueryOrigin) {
        match origin {
            QueryOrigin::Client { client } => {
                let idx = client as usize;
                self.retry_attempts[idx] = self.retry_attempts[idx].saturating_add(1);
                let attempts = self.retry_attempts[idx];
                let over_budget =
                    self.config.retry_budget > 0 && attempts > self.config.retry_budget;
                let over_deadline = self
                    .config
                    .query_deadline
                    .is_some_and(|d| self.now >= self.first_attempt_at[idx] + d);
                if over_budget || over_deadline {
                    self.metrics.retries_abandoned += 1;
                    self.retry_attempts[idx] = 0;
                    let think = self.client_model.think_time(&mut self.rng);
                    self.schedule_submit(client, think);
                } else {
                    let delay = self.client_model.retry_delay(&mut self.rng, attempts);
                    self.schedule_submit(client, delay);
                }
            }
            QueryOrigin::Cohort {
                client,
                attempts,
                first_at,
            } => {
                let attempts = attempts.saturating_add(1);
                let over_budget =
                    self.config.retry_budget > 0 && attempts > self.config.retry_budget;
                let over_deadline = self
                    .config
                    .query_deadline
                    .is_some_and(|d| self.now >= first_at + d);
                if over_budget || over_deadline {
                    self.metrics.retries_abandoned += 1;
                    let think = self.client_model.think_time(&mut self.rng);
                    self.schedule_cohort_submit(client, 0, SimTime::ZERO, think);
                } else {
                    let delay = self.client_model.retry_delay(&mut self.rng, attempts);
                    self.schedule_cohort_submit(client, attempts, first_at, delay);
                }
            }
            QueryOrigin::Source { source } => {
                let src = &mut self.sources[source as usize];
                src.in_flight = src.in_flight.saturating_sub(1);
                src.failed += 1;
            }
        }
    }

    /// Consult the class breaker (if enabled) about an arrival estimated at
    /// `bytes` of compilation memory, tracing any state transition the
    /// consultation causes.
    pub(crate) fn breaker_admit(
        &mut self,
        class: usize,
        bytes: u64,
    ) -> throttledb_governor::AdmissionDecision {
        let now = self.now;
        let Some(breaker) = self.classes[class].breaker.as_mut() else {
            return throttledb_governor::AdmissionDecision::Admit { units: 1 };
        };
        let before = breaker.state();
        let decision = breaker.admit(now, bytes);
        let after = breaker.state();
        if after != before {
            self.trace_push(TraceEvent::BreakerTransition {
                at: now,
                class,
                state: after,
            });
        }
        decision
    }

    /// Feed an outcome to the class breaker (if enabled), tracing any state
    /// transition it causes.
    pub(crate) fn breaker_record(&mut self, class: usize, success: bool) {
        let now = self.now;
        let Some(breaker) = self.classes[class].breaker.as_mut() else {
            return;
        };
        let before = breaker.state();
        if success {
            breaker.record_success(now);
        } else {
            breaker.record_failure(now);
        }
        let after = breaker.state();
        if after != before {
            self.trace_push(TraceEvent::BreakerTransition {
                at: now,
                class,
                state: after,
            });
        }
    }

    /// Fold per-class results into the run metrics.
    fn finalize_metrics(mut self) -> RunMetrics {
        self.metrics.events_dispatched = self.queue.dispatched();
        self.metrics.peak_queue_depth = self.queue.peak_len();
        let mut class_clients = vec![0u32; self.classes.len()];
        if self.config.cohort_compressed {
            for (idx, count) in class_clients.iter_mut().enumerate() {
                *count = self.class_bounds[idx + 1] - self.class_bounds[idx];
            }
        } else {
            for class in &self.class_by_client {
                class_clients[*class] += 1;
            }
        }
        for (src, spec) in self.sources.iter().zip(&self.config.arrivals) {
            self.metrics.arrivals += src.arrivals;
            self.metrics.arrivals_admitted += src.admitted;
            self.metrics.arrivals_shed += src.shed;
            self.metrics.arrival_sources.push(ArrivalSourceMetrics {
                name: spec.name.clone(),
                modeled_clients: spec.modeled_clients,
                arrivals: src.arrivals,
                admitted: src.admitted,
                shed: src.shed,
                completed: src.completed,
                failed: src.failed,
            });
        }
        self.metrics.arrival_digest = self.arrival_digest;
        for (idx, class) in self.classes.iter().enumerate() {
            self.metrics.throttle.merge(class.policy.stats());
            let (shed, transitions, brownout) = class
                .breaker
                .as_ref()
                .map(|b| (b.shed(), b.transitions(), b.brownout_admits()))
                .unwrap_or((0, 0, 0));
            self.metrics.breaker_transitions += transitions;
            self.metrics.brownout_admits += brownout;
            self.metrics.classes.push(ClassMetrics {
                name: class.spec.name.clone(),
                clients: class_clients[idx],
                completed: class.completed,
                completed_after_warmup: class.completed_after_warmup,
                failed: class.failed,
                best_effort_plans: class.best_effort_plans,
                shed,
                breaker_transitions: transitions,
                throttle: class.policy.stats().clone(),
                grants: class.grants.pool_stats(),
            });
        }
        // Fault windows, clamped to the observation window; a fault that
        // never began contributes nothing.
        let end = SimTime::ZERO + self.config.duration;
        self.metrics.fault_windows = self
            .faults
            .iter()
            .filter(|f| f.start < end)
            .map(|f| (f.start, f.end().min(end)))
            .collect();
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Arc<WorkloadProfiles> {
        Arc::new(WorkloadProfiles::characterize_sales(&ServerConfig::quick(
            8, true,
        )))
    }

    #[test]
    fn quick_run_completes_queries_and_is_deterministic() {
        let profiles = profiles();
        let run = |seed: u64| {
            let mut cfg = ServerConfig::quick(8, true);
            cfg.seed = seed;
            Server::new(cfg, profiles.clone()).run()
        };
        let a = run(1);
        assert!(
            a.completed.total() > 10,
            "an hour with 8 clients should complete queries, got {}",
            a.completed.total()
        );
        let b = run(1);
        assert_eq!(
            a.completed.total(),
            b.completed.total(),
            "same seed, same run"
        );
        let c = run(2);
        // A different seed gives a different (but same ballpark) run.
        assert!(c.completed.total() > 10);
    }

    #[test]
    fn throttled_run_engages_the_gateways() {
        let profiles = profiles();
        let metrics = Server::new(ServerConfig::quick(16, true), profiles).run();
        assert!(
            metrics.throttle.acquisitions.iter().sum::<u64>() > 0,
            "SALES compilations must acquire gateways"
        );
        assert!(metrics.compile_memory.max_value() > 100 << 20);
    }

    #[test]
    fn unthrottled_run_uses_more_compile_memory_at_peak() {
        let profiles = profiles();
        let throttled = Server::new(ServerConfig::quick(16, true), profiles.clone()).run();
        let unthrottled = Server::new(ServerConfig::quick(16, false), profiles).run();
        assert!(
            unthrottled.compile_memory.max_value() > throttled.compile_memory.max_value(),
            "throttling must cap concurrent compilation memory: {} vs {}",
            unthrottled.compile_memory.max_value(),
            throttled.compile_memory.max_value()
        );
        assert!(throttled.throttle.compilations_started >= throttled.completed.total());
    }

    #[test]
    fn single_class_run_reports_one_class_covering_everything() {
        let profiles = profiles();
        let metrics = Server::new(ServerConfig::quick(8, true), profiles).run();
        assert_eq!(metrics.classes.len(), 1);
        let class = &metrics.classes[0];
        assert_eq!(class.name, "default");
        assert_eq!(class.clients, 8);
        assert_eq!(class.completed, metrics.completed.total());
        assert_eq!(class.completed_after_warmup, metrics.completed_after_warmup);
        assert_eq!(class.throttle, metrics.throttle);
    }

    #[test]
    fn multi_class_run_is_deterministic_and_covers_all_classes() {
        let profiles = profiles();
        let run = || {
            let cfg = ServerConfig::quick(16, true).with_standard_classes();
            Server::new(cfg, profiles.clone()).run()
        };
        let a = run();
        assert_eq!(a.classes.len(), 3);
        let names: Vec<&str> = a.classes.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["default", "adhoc", "report"]);
        assert_eq!(a.classes.iter().map(|c| c.clients).sum::<u32>(), 16);
        // Every class makes progress...
        for class in &a.classes {
            assert!(class.completed > 0, "class {} idle", class.name);
        }
        // ...and the per-class counters add up to the run totals.
        assert_eq!(
            a.classes.iter().map(|c| c.completed).sum::<u64>(),
            a.completed.total()
        );
        assert_eq!(
            a.classes.iter().map(|c| c.failed).sum::<u64>(),
            a.failed.total()
        );
        // Seed-stable: an identical run reproduces the same per-class counts.
        let b = run();
        for (x, y) in a.classes.iter().zip(b.classes.iter()) {
            assert_eq!(x.completed, y.completed, "class {} not seed-stable", x.name);
            assert_eq!(x.failed, y.failed);
        }
    }

    #[test]
    fn partial_population_covers_every_class() {
        // A scenario phase running far fewer clients than the configured
        // maximum must still exercise every workload class (activation is
        // share-proportional, not a contiguous prefix that would starve
        // the later classes).
        let profiles = profiles();
        let cfg = ServerConfig::quick(18, true).with_standard_classes();
        let mut server = Server::new(cfg, profiles);
        server.set_active_clients(6);
        server.begin();
        server.run_until(SimTime::ZERO + SimDuration::from_secs(3600));
        let metrics = server.finish();
        assert_eq!(metrics.classes.len(), 3);
        for class in &metrics.classes {
            assert!(
                class.completed > 0,
                "class {} starved with a partial population",
                class.name
            );
        }
    }

    #[test]
    fn class_ladders_throttle_independently() {
        let profiles = profiles();
        let cfg = ServerConfig::quick(16, true).with_standard_classes();
        let metrics = Server::new(cfg, profiles).run();
        let adhoc = &metrics.classes[1];
        // The adhoc ladder's thresholds are halved, so its compilations
        // acquire gateways at sizes the default class would wave through.
        assert!(
            adhoc.throttle.acquisitions.iter().sum::<u64>() > 0,
            "adhoc class never engaged its ladder"
        );
    }

    #[test]
    fn every_policy_runs_the_quick_config_deterministically() {
        let profiles = profiles();
        for kind in crate::config::PolicyKind::all() {
            let run = || {
                let mut cfg = ServerConfig::quick(12, true);
                cfg.policy = kind;
                Server::new(cfg, profiles.clone()).run()
            };
            let a = run();
            assert!(
                a.completed.total() > 10,
                "policy {} should complete queries, got {}",
                kind.name(),
                a.completed.total()
            );
            assert_eq!(
                a.throttle.levels(),
                kind.levels(&ServerConfig::quick(12, true).throttle),
                "policy {} reports the wrong stats shape",
                kind.name()
            );
            assert!(
                a.throttle.compilations_started > 0,
                "policy {} never saw a compilation",
                kind.name()
            );
            let b = run();
            assert_eq!(
                a.completed.total(),
                b.completed.total(),
                "policy {} not seed-stable",
                kind.name()
            );
            assert_eq!(a.throttle, b.throttle, "policy {} stats drift", kind.name());
        }
    }

    use crate::config::ArrivalSourceConfig;

    fn poisson_source(rate: f64, class: usize, max_in_flight: u32) -> ArrivalSourceConfig {
        ArrivalSourceConfig {
            name: "web".to_string(),
            process: throttledb_sim::ArrivalProcess::Poisson { rate_per_sec: rate },
            class,
            max_in_flight,
            modeled_clients: 1_000_000,
        }
    }

    #[test]
    fn cohort_compressed_run_is_trace_identical_to_materialized() {
        // The tentpole's equivalence claim at the engine level: the same
        // population run cohort-compressed (no per-client vectors, retry
        // state in the events) produces the exact same event stream as the
        // materialized run — including under retry budgets and deadlines,
        // which exercise every cohort state-machine branch.
        let profiles = profiles();
        let run = |cohort: bool| {
            let mut cfg = ServerConfig::quick(12, true).with_standard_classes();
            cfg.cohort_compressed = cohort;
            cfg.retry_budget = 3;
            cfg.query_deadline = Some(SimDuration::from_secs(1800));
            cfg.breaker = throttledb_governor::BreakerConfig {
                enabled: true,
                ..Default::default()
            };
            let mut server = Server::new(cfg.clone(), profiles.clone());
            server.enable_trace();
            server.set_active_clients(cfg.clients);
            server.begin();
            server.run_until(SimTime::ZERO + cfg.duration);
            let trace = server.take_trace();
            (trace, server.finish())
        };
        let (mat_trace, mat) = run(false);
        let (coh_trace, coh) = run(true);
        assert!(mat.completed.total() > 10, "run too idle to prove anything");
        assert_eq!(
            mat_trace, coh_trace,
            "cohort-compressed trace diverged from the materialized population"
        );
        assert_eq!(mat.completed.total(), coh.completed.total());
        assert_eq!(mat.total_failures(), coh.total_failures());
        assert_eq!(mat.retries_abandoned, coh.retries_abandoned);
        // Per-class client counts come from the bounds in cohort mode and
        // from the materialized vector otherwise; they must agree.
        for (m, c) in mat.classes.iter().zip(coh.classes.iter()) {
            assert_eq!(m.clients, c.clients, "class {} population", m.name);
            assert_eq!(m.completed, c.completed, "class {} completions", m.name);
        }
    }

    #[test]
    fn cohort_population_must_stay_constant() {
        let profiles = profiles();
        let mut cfg = ServerConfig::quick(8, true);
        cfg.cohort_compressed = true;
        let mut server = Server::new(cfg, profiles);
        server.set_active_clients(8);
        server.set_active_clients(8); // same n: no-op
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            server.set_active_clients(4)
        }));
        assert!(result.is_err(), "resizing a cohort population must panic");
    }

    #[test]
    fn open_loop_source_runs_without_clients_and_accounts_exactly() {
        let profiles = profiles();
        let run = || {
            let mut cfg = ServerConfig::quick(0, true);
            cfg.arrivals = vec![poisson_source(5.0, 0, 8)];
            Server::new(cfg, profiles.clone()).run()
        };
        let a = run();
        assert!(
            a.arrivals > 1_000,
            "an hour at 5/s should offer thousands of arrivals, got {}",
            a.arrivals
        );
        assert_eq!(a.arrivals, a.arrivals_admitted + a.arrivals_shed);
        assert_eq!(a.arrival_sources.len(), 1);
        let s = &a.arrival_sources[0];
        assert_eq!(s.arrivals, a.arrivals);
        assert!(s.completed > 0, "no arrival ever completed");
        assert!(
            s.admitted >= s.completed + s.failed,
            "more terminal outcomes than admissions"
        );
        assert_ne!(
            a.arrival_digest, 0xcbf2_9ce4_8422_2325,
            "digest never folded an arrival"
        );
        // Deterministic: the replay makes identical per-arrival decisions.
        let b = run();
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.arrival_digest, b.arrival_digest);
    }

    #[test]
    fn overloaded_source_sheds_at_the_cap_cheaply() {
        // λ far above what max_in_flight = 2 can drain: almost everything
        // sheds at the door, and a cap-shed arrival costs one event — so
        // dispatched events stay within a small multiple of the arrival
        // count instead of 18× (the admitted-query event cost).
        let profiles = profiles();
        let mut cfg = ServerConfig::quick(0, true);
        cfg.arrivals = vec![poisson_source(50.0, 0, 2)];
        let metrics = Server::new(cfg, profiles).run();
        assert!(metrics.arrivals > 100_000);
        assert!(
            metrics.arrivals_shed > metrics.arrivals_admitted * 10,
            "cap never engaged: {} shed vs {} admitted",
            metrics.arrivals_shed,
            metrics.arrivals_admitted
        );
        assert!(
            metrics.events_dispatched < metrics.arrivals * 2,
            "shed arrivals are supposed to be ~1 event each: {} events for {} arrivals",
            metrics.events_dispatched,
            metrics.arrivals
        );
    }

    #[test]
    fn mixed_cohort_and_source_run_never_reuses_a_live_query_slot() {
        // Arena safety under a high arrival count: every query id is
        // submitted exactly once and reaches at most one terminal event —
        // i.e. lazily materialized per-arrival state never lands in a slot
        // that is still live.
        let profiles = profiles();
        let mut cfg = ServerConfig::quick(8, true);
        cfg.cohort_compressed = true;
        cfg.arrivals = vec![poisson_source(50.0, 0, 256)];
        let mut server = Server::new(cfg, profiles);
        server.enable_trace();
        server.set_active_clients(8);
        server.begin();
        server.run_until(SimTime::ZERO + SimDuration::from_secs(900));
        let trace = server.take_trace();
        let mut submitted = std::collections::HashSet::new();
        let mut finished = std::collections::HashSet::new();
        for ev in &trace {
            match ev {
                TraceEvent::Submitted { query, .. } => {
                    assert!(submitted.insert(*query), "query {query} submitted twice");
                }
                TraceEvent::Completed { query, .. }
                | TraceEvent::Failed { query, .. }
                | TraceEvent::Shed { query, .. } => {
                    assert!(submitted.contains(query), "query {query} never submitted");
                    assert!(finished.insert(*query), "query {query} finished twice");
                }
                _ => {}
            }
        }
        assert!(
            submitted.len() > 100,
            "too few in-flight materializations ({}) to stress slot reuse",
            submitted.len()
        );
    }

    #[test]
    fn sharded_run_is_byte_identical_to_single_threaded() {
        // The tentpole's equivalence claim at the engine level: the same
        // open-loop run with the arrival plane split across generator
        // shards reproduces the single-threaded schedule exactly —
        // trace, digest, counters, dispatch count and peak queue depth.
        let profiles = profiles();
        let run = |shards: u32| {
            let mut cfg = ServerConfig::quick(4, true);
            cfg.shards = shards;
            cfg.arrivals = vec![
                poisson_source(8.0, 0, 16),
                ArrivalSourceConfig {
                    name: "burst".to_string(),
                    process: throttledb_sim::ArrivalProcess::Mmpp {
                        calm_rate_per_sec: 1.0,
                        burst_rate_per_sec: 40.0,
                        mean_calm_secs: 30.0,
                        mean_burst_secs: 5.0,
                    },
                    class: 0,
                    max_in_flight: 4,
                    modeled_clients: 10_000,
                },
            ];
            let mut server = Server::new(cfg.clone(), profiles.clone());
            server.enable_trace();
            server.set_active_clients(cfg.clients);
            server.begin();
            server.run_until(SimTime::ZERO + SimDuration::from_secs(600));
            // Mid-run boundary: the plane must survive parking and resuming.
            server.run_until(SimTime::ZERO + cfg.duration);
            let trace = server.take_trace();
            (trace, server.finish())
        };
        let (base_trace, base) = run(1);
        let (sharded_trace, sharded) = run(4);
        assert!(base.arrivals > 1_000, "run too idle to prove anything");
        assert_eq!(base_trace, sharded_trace, "sharded trace diverged");
        assert_eq!(base.arrival_digest, sharded.arrival_digest);
        assert_eq!(base.arrivals, sharded.arrivals);
        assert_eq!(base.arrivals_admitted, sharded.arrivals_admitted);
        assert_eq!(base.arrivals_shed, sharded.arrivals_shed);
        assert_eq!(base.completed.total(), sharded.completed.total());
        assert_eq!(base.events_dispatched, sharded.events_dispatched);
        assert_eq!(base.peak_queue_depth, sharded.peak_queue_depth);
        for (b, s) in base.arrival_sources.iter().zip(&sharded.arrival_sources) {
            assert_eq!(b.arrivals, s.arrivals, "source {} offered", b.name);
            assert_eq!(b.completed, s.completed, "source {} completed", b.name);
            assert_eq!(b.failed, s.failed, "source {} failed", b.name);
        }
    }

    #[test]
    fn sharded_overloaded_source_sheds_identically_and_cheaply() {
        // The bulk-shed drain: an at-cap firehose must stay byte-exact
        // with the single-threaded path and keep the ~1-event-per-shed
        // cost contract.
        let profiles = profiles();
        let run = |shards: u32| {
            let mut cfg = ServerConfig::quick(0, true);
            cfg.shards = shards;
            cfg.arrivals = vec![poisson_source(50.0, 0, 2)];
            Server::new(cfg, profiles.clone()).run()
        };
        let base = run(1);
        let sharded = run(4);
        assert!(base.arrivals > 100_000);
        assert!(base.arrivals_shed > base.arrivals_admitted * 10);
        assert_eq!(base.arrival_digest, sharded.arrival_digest);
        assert_eq!(base.arrivals, sharded.arrivals);
        assert_eq!(base.arrivals_shed, sharded.arrivals_shed);
        assert_eq!(base.events_dispatched, sharded.events_dispatched);
        assert_eq!(base.peak_queue_depth, sharded.peak_queue_depth);
        assert!(sharded.events_dispatched < sharded.arrivals * 2);
    }

    #[test]
    fn shards_without_sources_are_a_true_no_op() {
        // A closed-loop config has no arrival plane to shard: shards = 4
        // must take exactly the single-threaded path.
        let profiles = profiles();
        let run = |shards: u32| {
            let mut cfg = ServerConfig::quick(8, true);
            cfg.shards = shards;
            let mut server = Server::new(cfg.clone(), profiles.clone());
            server.enable_trace();
            server.set_active_clients(cfg.clients);
            server.begin();
            server.run_until(SimTime::ZERO + cfg.duration);
            let trace = server.take_trace();
            (trace, server.finish())
        };
        let (base_trace, base) = run(1);
        let (sharded_trace, sharded) = run(4);
        assert_eq!(base_trace, sharded_trace);
        assert_eq!(base.completed.total(), sharded.completed.total());
        assert_eq!(base.events_dispatched, sharded.events_dispatched);
    }

    #[test]
    fn feedback_policies_admit_under_pressure_without_wedging() {
        // The PID and cost-based policies must keep making progress on a
        // multi-class, heavily-loaded run — queues drain, nothing deadlocks.
        let profiles = profiles();
        for kind in [
            crate::config::PolicyKind::Pid,
            crate::config::PolicyKind::CostBased,
        ] {
            let mut cfg = ServerConfig::quick(16, true).with_standard_classes();
            cfg.policy = kind;
            let metrics = Server::new(cfg, profiles.clone()).run();
            for class in &metrics.classes {
                assert!(
                    class.completed > 0,
                    "policy {} starved class {}",
                    kind.name(),
                    class.name
                );
            }
        }
    }
}
