//! The sharded arrival plane: generator shards + the decision spine.
//!
//! With `ServerConfig::shards > 1`, a run's open-loop arrival *instants*
//! are produced by worker threads ("generator shards") while every
//! admission decision stays on the main thread (the "spine"), which
//! merges generated arrivals with the timing wheel's own events into one
//! global `(time, seq)` schedule. The split is sound because arrival
//! generation is feedback-free: each source's sampler draws only from
//! its own forked RNG stream and the previous arrival's time, so shard
//! `k` can precompute the instants for sources `index % shards == k`
//! arbitrarily far ahead of the simulation clock.
//!
//! Determinism is byte-exact with the single-threaded path because the
//! spine reserves each arrival's sequence number from the shared event
//! queue (`EventQueue::reserve_seq`) at exactly the moments the
//! single-threaded engine would have called `schedule` for it:
//!
//! * at [`crate::Server::begin`], after the broker tick, once per source
//!   in index order iff the source's first arrival lands inside the run
//!   (the `Init` handshake carries that bit per source); and
//! * at the *end* of processing each arrival — after `submit_query`'s
//!   own pipeline-event schedules — iff the worker's one-sample
//!   lookahead says a next arrival lands inside the run (`has_next`).
//!
//! Workers deliver arrivals in lockstep epochs (one broker tick wide)
//! over bounded channels and seal each epoch at its barrier; a merged
//! candidate is released only when its `(time, seq)` key precedes every
//! sealed frontier, so the spine replays the exact single-threaded
//! order. The protocol's merge discipline is the same one
//! `throttledb_sim::shard::EpochMerge` proves against a sorted-vec
//! oracle; this module is its engine-shaped instantiation (per-source
//! slots instead of generic mailboxes, because each source's sequence
//! number is known even before its next arrival time is).
//!
//! Workers need no input from the spine, so the plane cannot deadlock:
//! a worker blocked on a full channel is released when the plane drops
//! its receivers, and it exits on the resulting send error.

use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;
use throttledb_sim::{ArrivalSampler, SimDuration, SimRng, SimTime};

/// Epochs a generator shard may run ahead of the spine before its
/// channel backpressures it.
const EPOCH_PIPELINE: usize = 8;

/// One arrival on the wire: the instant in microseconds shifted left one
/// bit, with the low bit carrying `has_next` (whether the *following*
/// arrival lands inside the run). Packing halves the bytes a 10M-arrival
/// run pushes through the channels and buffers, and the shift preserves
/// the per-source time order.
pub(crate) fn pack_arrival(at_us: u64, has_next: bool) -> u64 {
    debug_assert!(at_us < 1 << 63, "arrival instant overflows the packing");
    (at_us << 1) | has_next as u64
}

/// Inverse of [`pack_arrival`]: `(microseconds, has_next)`.
pub(crate) fn unpack_arrival(packed: u64) -> (u64, bool) {
    (packed >> 1, packed & 1 != 0)
}

/// One message from a generator shard to the spine.
pub(crate) enum ShardMsg {
    /// Handshake: per owned source (in owned order), whether its first
    /// arrival lands inside the run — the bit the spine needs to mirror
    /// the single-threaded `begin`'s conditional first-arrival schedule.
    Init(Vec<bool>),
    /// One sealed epoch: per owned source (in owned order), the
    /// [`pack_arrival`]-encoded instants in `[previous barrier,
    /// until_us)`.
    Epoch {
        /// Exclusive seal frontier (µs): no later message from this
        /// shard carries an arrival before it.
        until_us: u64,
        /// Arrival batches, indexed like the shard's owned-source list.
        sources: Vec<Vec<u64>>,
    },
}

/// Spine-side state of one arrival source.
#[derive(Debug, Default)]
pub(crate) struct SourceSlot {
    /// Sequence number reserved for the source's next arrival (`None`
    /// once the source is exhausted). Known even while the arrival's
    /// *time* is still in flight from the worker.
    pub(crate) reserved: Option<u64>,
    /// Delivered batches not yet fully dispatched, consumed in place (no
    /// per-arrival copying): `head` indexes into the front batch, and the
    /// invariant is that every queued batch is non-empty with
    /// `head < front.len()`.
    batches: VecDeque<Vec<u64>>,
    head: usize,
    /// Index into the plane's per-shard seal/receiver arrays.
    pub(crate) shard: usize,
}

impl SourceSlot {
    /// The source's next undispatched arrival (packed), if delivered.
    pub(crate) fn front(&self) -> Option<u64> {
        self.batches.front().map(|batch| batch[self.head])
    }

    /// The front batch's undispatched tail, if any.
    pub(crate) fn front_run(&self) -> Option<&[u64]> {
        self.batches.front().map(|batch| &batch[self.head..])
    }

    /// Drop the next `n` arrivals (they were dispatched). `n` must not
    /// cross a batch boundary beyond the front batch's tail.
    pub(crate) fn consume(&mut self, n: usize) {
        self.head += n;
        if let Some(batch) = self.batches.front() {
            debug_assert!(self.head <= batch.len());
            if self.head == batch.len() {
                self.batches.pop_front();
                self.head = 0;
            }
        }
    }
}

/// The spine's handle on the generator shards (see the
/// [module docs](self)).
pub(crate) struct ArrivalPlane {
    /// Per-source merge state, indexed by source index.
    pub(crate) slots: Vec<SourceSlot>,
    /// Per-shard sealed frontier (µs); `u64::MAX` once the shard's
    /// stream is complete (its worker exited).
    pub(crate) seals: Vec<u64>,
    /// Per-shard owned-source lists (`index % shards`), in index order.
    owned: Vec<Vec<usize>>,
    receivers: Vec<Option<Receiver<ShardMsg>>>,
    handles: Vec<JoinHandle<()>>,
    /// Per source: whether its first arrival lands inside the run, from
    /// the `Init` handshake.
    first_exists: Vec<bool>,
}

impl ArrivalPlane {
    /// Spawn one generator shard per non-empty `index % shards` class
    /// and complete the `Init` handshake. `generators` holds each
    /// source's private RNG stream and sampler, cloned from the spine's
    /// (which the sharded path then never touches); `start`/`end` bound
    /// the run and `epoch` is the barrier interval.
    pub(crate) fn spawn(
        shards: usize,
        generators: Vec<(SimRng, ArrivalSampler)>,
        start: SimTime,
        end: SimTime,
        epoch: SimDuration,
    ) -> Self {
        debug_assert!(shards >= 1 && !generators.is_empty());
        // The window is a pure batching knob: generation is feedback-free,
        // so widening it changes which message an arrival ships in, never
        // the arrival itself. Wide windows keep the per-epoch costs (one
        // rendezvous and one batch allocation per shard) off the hot path
        // of long runs; the bounded pipeline still caps worker run-ahead
        // at `EPOCH_PIPELINE` windows of samples.
        let epoch = epoch.max(SimDuration::from_secs(1));
        let sources = generators.len();
        let mut owned: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for index in 0..sources {
            owned[index % shards].push(index);
        }
        let mut slots: Vec<SourceSlot> = (0..sources).map(|_| SourceSlot::default()).collect();
        let mut seals = vec![u64::MAX; shards];
        let mut receivers: Vec<Option<Receiver<ShardMsg>>> = Vec::with_capacity(shards);
        let mut handles = Vec::new();
        let mut generators: Vec<Option<(SimRng, ArrivalSampler)>> =
            generators.into_iter().map(Some).collect();
        for (shard, owned_sources) in owned.iter().enumerate() {
            if owned_sources.is_empty() {
                // A shard with nothing to generate stays sealed at MAX
                // forever and never blocks the merge.
                receivers.push(None);
                continue;
            }
            for &index in owned_sources {
                slots[index].shard = shard;
            }
            let gens: Vec<(SimRng, ArrivalSampler)> = owned_sources
                .iter()
                .map(|&index| generators[index].take().expect("each source owned once"))
                .collect();
            let (tx, rx) = sync_channel(EPOCH_PIPELINE);
            handles.push(std::thread::spawn(move || {
                generate(gens, start, end, epoch, tx);
            }));
            receivers.push(Some(rx));
            seals[shard] = start.as_micros();
        }
        // Init handshake, shards in index order: which sources open with
        // a live first arrival.
        let mut first_exists = vec![false; sources];
        for (shard, rx) in receivers.iter().enumerate() {
            let Some(rx) = rx else { continue };
            match rx.recv() {
                Ok(ShardMsg::Init(flags)) => {
                    for (pos, exists) in flags.into_iter().enumerate() {
                        first_exists[owned[shard][pos]] = exists;
                    }
                }
                _ => unreachable!("workers send Init first"),
            }
        }
        ArrivalPlane {
            slots,
            seals,
            owned,
            receivers,
            handles,
            first_exists,
        }
    }

    /// Per source, whether its first arrival lands inside the run — the
    /// spine reserves a sequence number for exactly these, in index
    /// order, mirroring the single-threaded `begin`.
    pub(crate) fn first_exists(&self) -> &[bool] {
        &self.first_exists
    }

    /// Receive one epoch from every live shard (lockstep), extending the
    /// per-source buffers and the sealed frontiers. A disconnected shard
    /// has shipped its whole stream: its seal moves to `u64::MAX`.
    pub(crate) fn pump(&mut self) {
        for shard in 0..self.receivers.len() {
            let Some(rx) = self.receivers[shard].as_ref() else {
                continue;
            };
            match rx.recv() {
                Ok(ShardMsg::Epoch { until_us, sources }) => {
                    for (pos, batch) in sources.into_iter().enumerate() {
                        if !batch.is_empty() {
                            self.slots[self.owned[shard][pos]].batches.push_back(batch);
                        }
                    }
                    self.seals[shard] = until_us;
                }
                Ok(ShardMsg::Init(_)) => unreachable!("Init is consumed at spawn"),
                Err(_) => {
                    self.seals[shard] = u64::MAX;
                    self.receivers[shard] = None;
                }
            }
        }
    }
}

impl Drop for ArrivalPlane {
    fn drop(&mut self) {
        // Unblock workers parked on a full channel, then reap them.
        self.receivers.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Generator-shard body: replay each owned source's arrival recurrence
/// `t_{k+1} = t_k + next_gap(rng, t_k)` (identical draws to the
/// single-threaded engine), ship it epoch by epoch, and exit once every
/// owned source is exhausted — closing the channel is the final seal.
fn generate(
    mut gens: Vec<(SimRng, ArrivalSampler)>,
    start: SimTime,
    end: SimTime,
    epoch: SimDuration,
    tx: SyncSender<ShardMsg>,
) {
    // First arrivals, exactly as the single-threaded `begin` samples them.
    let mut next: Vec<Option<SimTime>> = gens
        .iter_mut()
        .map(|(rng, sampler)| {
            let at = start + sampler.next_gap(rng, start);
            (at < end).then_some(at)
        })
        .collect();
    if tx
        .send(ShardMsg::Init(next.iter().map(Option::is_some).collect()))
        .is_err()
    {
        return;
    }
    let mut window_end = start + epoch;
    // Last window's batch sizes, as capacity hints: steady-rate sources
    // would otherwise regrow every batch from zero, and the doubling
    // copies dominate the generation loop on long runs.
    let mut hint = vec![0usize; gens.len()];
    loop {
        let mut batches: Vec<Vec<u64>> = hint
            .iter()
            .map(|&n| Vec::with_capacity(n + n / 4 + 8))
            .collect();
        for (pos, (rng, sampler)) in gens.iter_mut().enumerate() {
            while let Some(at) = next[pos] {
                if at >= window_end {
                    break;
                }
                // One-sample lookahead: the spine needs to know, while
                // processing this arrival, whether the single-threaded
                // engine would have scheduled a next one.
                let follow = at + sampler.next_gap(rng, at);
                let has_next = follow < end;
                batches[pos].push(pack_arrival(at.as_micros(), has_next));
                next[pos] = has_next.then_some(follow);
            }
            hint[pos] = batches[pos].len();
        }
        if tx
            .send(ShardMsg::Epoch {
                until_us: window_end.as_micros(),
                sources: batches,
            })
            .is_err()
        {
            return;
        }
        if window_end >= end {
            // Every arrival lands before `end`, so this epoch drained
            // them all; disconnecting seals the stream at infinity.
            return;
        }
        window_end += epoch;
    }
}
