//! Server / experiment configuration.

use serde::{Deserialize, Serialize};
use throttledb_core::ThrottleConfig;
use throttledb_governor::BreakerConfig;
use throttledb_membroker::BrokerConfig;
use throttledb_sim::{ArrivalProcess, SimDuration};
use throttledb_workload::ClientModel;

/// One open-loop arrival source: an aggregate client population modeled as
/// a stochastic arrival *process* instead of per-client closed-loop state.
///
/// A source costs the server one pending timing-wheel event (its next
/// arrival) regardless of how many users it models, which is what lets a
/// single sweep cell push tens of millions of arrivals through admission.
/// Arrivals beyond [`ArrivalSourceConfig::max_in_flight`] concurrent
/// queries are shed at the door — before any query content is sampled — so
/// an overloaded source stays cheap: one event and one digest fold per
/// rejected arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSourceConfig {
    /// Source name ("web", "api", "batch", ...), used in per-source metrics.
    pub name: String,
    /// The stochastic process arrival instants are drawn from. Each source
    /// samples from its own forked RNG stream, so adding a source never
    /// perturbs another source's arrival sequence.
    pub process: ArrivalProcess,
    /// Workload class (index into [`ServerConfig::classes`]) this source's
    /// queries submit under.
    pub class: usize,
    /// Concurrency cap: with this many of the source's queries already in
    /// flight, further arrivals are shed immediately.
    pub max_in_flight: u32,
    /// Size of the user population this source stands in for. Reporting
    /// only — the process alone fixes the offered load.
    pub modeled_clients: u32,
}

impl ArrivalSourceConfig {
    /// Panics on inconsistent settings.
    pub fn validate(&self) {
        assert!(!self.name.is_empty(), "arrival source needs a name");
        self.process.validate();
        assert!(
            self.max_in_flight > 0,
            "arrival source needs max_in_flight >= 1"
        );
        assert!(
            self.modeled_clients > 0,
            "arrival source models at least one client"
        );
    }
}

/// One named workload class, mapped to its own per-class admission pools: a
/// gateway ladder with scaled thresholds and a slice of the execution
/// memory-grant budget. Classes let one server give interactive sessions,
/// ad-hoc analysts and scheduled reports different throttling envelopes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadClassConfig {
    /// Class name ("default", "adhoc", "report", ...).
    pub name: String,
    /// Fraction of the client population assigned to this class. Shares are
    /// normalized over all classes, so any positive weights work.
    pub client_share: f64,
    /// Multiplier applied to the base ladder's gateway thresholds: < 1
    /// throttles this class's compilations earlier, > 1 later.
    pub threshold_scale: f64,
    /// Fraction of the broker's execution-memory target given to this
    /// class's grant pool. Fractions across classes should sum to at most 1.
    pub grant_fraction: f64,
}

impl WorkloadClassConfig {
    /// The single catch-all class used when no classes are configured
    /// explicitly: the whole population, unscaled ladder, whole grant budget.
    pub fn default_class() -> Self {
        WorkloadClassConfig {
            name: "default".to_string(),
            client_share: 1.0,
            threshold_scale: 1.0,
            grant_fraction: 1.0,
        }
    }

    /// This class's ladder configuration: `base` with every gateway
    /// threshold scaled by [`WorkloadClassConfig::threshold_scale`]. The
    /// exemption floor is clamped below the first scaled threshold so the
    /// diagnostic-query exemption invariant survives aggressive
    /// down-scaling.
    pub fn scaled_throttle(&self, base: &ThrottleConfig) -> ThrottleConfig {
        let mut cfg = base.clone();
        if (self.threshold_scale - 1.0).abs() > f64::EPSILON {
            for m in &mut cfg.monitors {
                m.threshold_bytes =
                    ((m.threshold_bytes as f64 * self.threshold_scale) as u64).max(1);
            }
            cfg.exempt_bytes = cfg.exempt_bytes.min(cfg.monitors[0].threshold_bytes);
        }
        cfg
    }

    /// Panics on inconsistent settings.
    pub fn validate(&self) {
        assert!(!self.name.is_empty(), "workload class needs a name");
        assert!(self.client_share > 0.0, "client_share must be positive");
        assert!(
            self.threshold_scale > 0.0,
            "threshold_scale must be positive"
        );
        assert!(
            self.grant_fraction > 0.0 && self.grant_fraction <= 1.0,
            "grant_fraction must be in (0,1]"
        );
    }
}

/// Which compilation-admission policy a run uses.
///
/// Every built-in scenario can run under any policy (see
/// `Scenario::with_policy` in `throttledb-scenario`); the bench crate's
/// policy sweeps grid all three against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The paper's static gateway ladder (the baseline).
    Ladder,
    /// A PID feedback controller servoing a concurrency limit on the
    /// broker's predicted compilation-memory pressure.
    Pid,
    /// A cost-based planner reserving each template's profiled peak
    /// compilation bytes against the broker's compilation target.
    CostBased,
}

impl PolicyKind {
    /// All policies, in scoreboard order.
    pub fn all() -> [PolicyKind; 3] {
        [PolicyKind::Ladder, PolicyKind::Pid, PolicyKind::CostBased]
    }

    /// The short name used on CLIs and in `BENCH_policies.json`.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Ladder => "ladder",
            PolicyKind::Pid => "pid",
            PolicyKind::CostBased => "cost",
        }
    }

    /// Parse a CLI name ("ladder", "pid", "cost").
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "ladder" => Some(PolicyKind::Ladder),
            "pid" => Some(PolicyKind::Pid),
            "cost" | "cost-based" => Some(PolicyKind::CostBased),
            _ => None,
        }
    }

    /// Number of admission levels this policy's `ThrottleStats` cover under
    /// `throttle`: the ladder reports per gateway, the single-queue
    /// policies at one level. A disabled throttle always runs the (inert)
    /// ladder, whatever the configured kind.
    pub fn levels(self, throttle: &ThrottleConfig) -> usize {
        if !throttle.enabled {
            return throttle.monitor_count();
        }
        match self {
            PolicyKind::Ladder => throttle.monitor_count(),
            PolicyKind::Pid | PolicyKind::CostBased => 1,
        }
    }
}

/// Configuration of one simulated server run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// CPUs on the machine (paper: 8 × 700 MHz Xeon).
    pub cpus: u32,
    /// Memory broker configuration (paper: 4 GB).
    pub broker: BrokerConfig,
    /// Gateway-ladder configuration (enabled = throttled run).
    pub throttle: ThrottleConfig,
    /// Number of closed-loop clients. May be zero when at least one
    /// open-loop [`ArrivalSourceConfig`] supplies the load.
    pub clients: u32,
    /// Open-loop arrival sources layered on top of (or replacing) the
    /// closed-loop population. Empty reproduces the paper's purely
    /// closed-loop runs.
    pub arrivals: Vec<ArrivalSourceConfig>,
    /// Run the closed-loop population in cohort-compressed form: no
    /// per-client vectors are materialized — retry state rides inside each
    /// pending submit event and class membership is derived from the
    /// contiguous [`ServerConfig::class_bounds`] ranges. Requires a
    /// constant population (every phase at the same client count) and no
    /// client-surge faults; a cohort run's trace is byte-identical to the
    /// same population materialized as individual clients.
    pub cohort_compressed: bool,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Warm-up period excluded from reported results (the paper drops the
    /// ramp-up and starts its figures at an intermediate time index).
    pub warmup: SimDuration,
    /// Width of one reporting slice in the throughput figures.
    pub slice: SimDuration,
    /// Client think/retry behaviour.
    pub client_model: ClientModel,
    /// RNG seed (figures regenerate identically for a given seed).
    pub seed: u64,

    // --- calibration of the simulated hardware -------------------------------
    /// Seconds of compile CPU per optimizer transformation on one 700 MHz
    /// core. 35 000 transformations ≈ 50 s, matching the paper's
    /// "queries ... generally compile for 10-90 seconds".
    pub compile_seconds_per_transformation: f64,
    /// Fixed compile CPU floor (parsing/binding) in seconds.
    pub compile_seconds_base: f64,
    /// Number of discrete memory-growth steps a simulated compilation takes.
    pub compile_steps: u32,
    /// Fraction of a plan's statistical footprint that one execution actually
    /// reads (index access, partition pruning). Keeps executions in the
    /// paper's 30 s – 10 min band.
    pub io_touched_fraction: f64,
    /// Aggregate sequential I/O bandwidth of the RAID array, bytes/second
    /// (paper: 2-channel Ultra3 SCSI, 8 spindles).
    pub io_bandwidth_bytes_per_sec: f64,
    /// Size of the hot working set the buffer pool caches (dimension tables,
    /// indexes, hot fact ranges).
    pub hot_working_set_bytes: u64,
    /// CPU parallelism one query's execution can exploit.
    pub exec_parallelism: f64,
    /// Calibration factor applied to the execution model's per-row CPU cost.
    /// The optimizer's row counts describe the full-scale warehouse without
    /// the bitmap filters and vectorized execution a production engine uses;
    /// this factor brings simulated executions into the paper's observed
    /// 30 s – 10 min band.
    pub exec_cpu_calibration: f64,
    /// How long a query may wait for its execution memory grant before
    /// failing with a resource error.
    pub grant_timeout: SimDuration,
    /// Interval between broker recalculations / housekeeping ticks.
    pub broker_tick: SimDuration,
    /// Fraction of OLTP/diagnostic queries mixed into the stream.
    pub oltp_fraction: f64,
    /// Named workload classes, each with its own per-class admission pools
    /// (scaled gateway ladder + grant-budget slice). The default single
    /// "default" class reproduces the paper's undifferentiated population.
    pub classes: Vec<WorkloadClassConfig>,
    /// Which compilation-admission policy runs (default: the paper's
    /// gateway ladder). Ignored when the throttle is disabled — a baseline
    /// run admits everything under any policy.
    pub policy: PolicyKind,
    /// Per-class circuit breaker over a rolling failure-rate window
    /// (default: disabled). While open, large arrivals are shed and small
    /// ones brown out; see `throttledb_governor::CircuitBreaker`.
    pub breaker: BreakerConfig,
    /// Consecutive failed/shed attempts a client tolerates before
    /// abandoning the retry chain and moving on to fresh work (0 =
    /// unlimited, the paper's behaviour).
    pub retry_budget: u32,
    /// Total deadline for one logical query across retries, measured from
    /// the chain's first submission: once exceeded, a failed attempt is
    /// abandoned instead of requeued (fail fast). `None` disables the
    /// deadline.
    pub query_deadline: Option<SimDuration>,
    /// Number of shards a single run spreads across worker cores: arrival
    /// sources are partitioned `index % shards` onto generator shards
    /// that pre-compute arrival instants one epoch (broker tick) ahead,
    /// exchanged with the decision spine at deterministic epoch barriers.
    /// `1` (the default) is a true no-op — the single-threaded path runs
    /// unchanged — and any value produces byte-identical traces, metrics
    /// and digests (see `docs/EXPERIMENTS.md` §8).
    pub shards: u32,
}

impl ServerConfig {
    /// The paper's evaluation configuration with `clients` concurrent users
    /// and throttling enabled or disabled.
    ///
    /// # Examples
    ///
    /// ```
    /// use throttledb_engine::ServerConfig;
    ///
    /// // The §5 machine: 8 CPUs, an 8-hour run with a 3-hour warm-up and
    /// // 3600-second reporting slices, throttling on.
    /// let cfg = ServerConfig::paper(30, true);
    /// cfg.validate();
    /// assert_eq!(cfg.cpus, 8);
    /// assert_eq!(cfg.duration.as_secs(), 8 * 3600);
    /// assert!(cfg.throttle.enabled);
    ///
    /// // The baseline leg of every figure differs only in the throttle.
    /// assert!(!ServerConfig::paper(30, false).throttle.enabled);
    /// ```
    pub fn paper(clients: u32, throttled: bool) -> Self {
        let throttle = if throttled {
            ThrottleConfig::paper_machine()
        } else {
            ThrottleConfig::disabled(8)
        };
        ServerConfig {
            cpus: 8,
            broker: BrokerConfig::paper_machine(),
            throttle,
            clients,
            arrivals: Vec::new(),
            cohort_compressed: false,
            // The paper plots 10800 s .. 28800 s after warm-up; we simulate
            // 8 hours and drop the first 3 as warm-up, giving the same
            // five 3600-second slices.
            duration: SimDuration::from_secs(8 * 3600),
            warmup: SimDuration::from_secs(3 * 3600),
            slice: SimDuration::from_secs(3600),
            client_model: ClientModel::default(),
            seed: 2007,
            compile_seconds_per_transformation: 1.4e-3,
            compile_seconds_base: 2.0,
            compile_steps: 16,
            io_touched_fraction: 0.05,
            io_bandwidth_bytes_per_sec: 160.0e6,
            hot_working_set_bytes: 8 << 30,
            exec_parallelism: 4.0,
            exec_cpu_calibration: 0.04,
            grant_timeout: SimDuration::from_secs(900),
            broker_tick: SimDuration::from_secs(5),
            oltp_fraction: 0.05,
            classes: vec![WorkloadClassConfig::default_class()],
            policy: PolicyKind::Ladder,
            breaker: BreakerConfig::default(),
            retry_budget: 0,
            query_deadline: None,
            shards: 1,
        }
    }

    /// A shortened configuration for tests and quick demos: same machine,
    /// fewer clients, 1 simulated hour with a 15-minute warm-up and
    /// 10-minute slices.
    pub fn quick(clients: u32, throttled: bool) -> Self {
        ServerConfig {
            duration: SimDuration::from_secs(3600),
            warmup: SimDuration::from_secs(900),
            slice: SimDuration::from_secs(600),
            ..ServerConfig::paper(clients, throttled)
        }
    }

    /// Replace the class list with the standard three-class split used by
    /// the per-class experiments: half the population in "default"
    /// (unscaled ladder, 40% of the grant budget), 30% in "adhoc"
    /// (thresholds halved — ad-hoc exploration is throttled early — 25% of
    /// grants) and 20% in "report" (thresholds relaxed 1.5×, 35% of grants
    /// for the big scheduled reports).
    pub fn with_standard_classes(mut self) -> Self {
        self.classes = vec![
            WorkloadClassConfig {
                name: "default".to_string(),
                client_share: 0.5,
                threshold_scale: 1.0,
                grant_fraction: 0.40,
            },
            WorkloadClassConfig {
                name: "adhoc".to_string(),
                client_share: 0.3,
                threshold_scale: 0.5,
                grant_fraction: 0.25,
            },
            WorkloadClassConfig {
                name: "report".to_string(),
                client_share: 0.2,
                threshold_scale: 1.5,
                grant_fraction: 0.35,
            },
        ];
        self
    }

    /// Panics on inconsistent settings.
    pub fn validate(&self) {
        assert!(self.cpus > 0);
        assert!(
            self.clients > 0 || !self.arrivals.is_empty(),
            "need closed-loop clients or at least one arrival source"
        );
        assert!(
            self.warmup < self.duration,
            "warm-up must end before the run does"
        );
        assert!(!self.slice.is_zero());
        assert!(self.compile_steps >= 2);
        assert!(self.io_bandwidth_bytes_per_sec > 0.0);
        assert!((0.0..=1.0).contains(&self.io_touched_fraction));
        assert!(self.exec_parallelism >= 1.0);
        assert!(self.exec_cpu_calibration > 0.0);
        self.broker.validate();
        self.throttle.validate();
        assert!(!self.classes.is_empty(), "need at least one workload class");
        let mut grant_total = 0.0;
        for class in &self.classes {
            class.validate();
            class.scaled_throttle(&self.throttle).validate();
            grant_total += class.grant_fraction;
        }
        assert!(
            grant_total <= 1.0 + 1e-9,
            "class grant fractions oversubscribe the execution budget (sum = {grant_total})"
        );
        self.breaker.validate();
        for (index, source) in self.arrivals.iter().enumerate() {
            source.validate();
            assert!(
                source.class < self.classes.len(),
                "arrival source {index} ({}) names class {} but only {} classes exist",
                source.name,
                source.class,
                self.classes.len()
            );
        }
        if let Some(deadline) = self.query_deadline {
            assert!(!deadline.is_zero(), "query deadline must be positive");
        }
        assert!(self.shards >= 1, "a run needs at least one shard");
    }

    /// The deterministic order in which clients are activated when fewer
    /// than the configured maximum participate (scenario phases resize the
    /// population): classes are interleaved proportionally to their
    /// normalized shares, so any partial population still covers every
    /// class. A contiguous prefix over [`ServerConfig::class_assignment`]'s
    /// ranges would instead starve the later classes entirely — while the
    /// broker kept reserving their grant and compile-target slices.
    pub fn activation_order(&self) -> Vec<u32> {
        let assignment = self.class_assignment();
        let mut class_totals = vec![0u32; self.classes.len()];
        for class in &assignment {
            class_totals[*class] += 1;
        }
        // Position of each client within its class (0-based).
        let mut seen = vec![0u32; self.classes.len()];
        let mut keyed: Vec<(u32, usize, u32)> = Vec::with_capacity(assignment.len());
        for (client, class) in assignment.iter().enumerate() {
            keyed.push((seen[*class], *class, client as u32));
            seen[*class] += 1;
        }
        // Sort by fractional position within the class ((pos+1)/total,
        // compared exactly via cross-multiplication), tie-broken by class
        // then client id: the i-th activated client of a class with N
        // members arrives at fraction (i+1)/N, which interleaves classes
        // in proportion to their sizes.
        keyed.sort_by(|a, b| {
            let lhs = (a.0 as u64 + 1) * class_totals[b.1] as u64;
            let rhs = (b.0 as u64 + 1) * class_totals[a.1] as u64;
            lhs.cmp(&rhs).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
        });
        keyed.into_iter().map(|(_, _, client)| client).collect()
    }

    /// The fenceposts of [`ServerConfig::class_assignment`]'s contiguous
    /// ranges, as `classes.len() + 1` client-id boundaries: class `i` owns
    /// client ids `bounds[i] .. bounds[i + 1]`. Cohort-compressed runs map
    /// a client id to its class through these bounds instead of
    /// materializing the per-client assignment vector.
    pub fn class_bounds(&self) -> Vec<u32> {
        let total_share: f64 = self.classes.iter().map(|c| c.client_share).sum();
        let mut bounds = Vec::with_capacity(self.classes.len() + 1);
        bounds.push(0u32);
        let mut acc = 0.0;
        for class in self.classes.iter().take(self.classes.len() - 1) {
            acc += class.client_share / total_share;
            let end = ((self.clients as f64 * acc).round() as u32).min(self.clients);
            bounds.push(end);
        }
        bounds.push(self.clients);
        bounds
    }

    /// Deterministically assign each client to a class: contiguous ranges
    /// sized by the normalized [`WorkloadClassConfig::client_share`]s, with
    /// the last class absorbing rounding remainder. Returns one class index
    /// per client id.
    pub fn class_assignment(&self) -> Vec<usize> {
        let total_share: f64 = self.classes.iter().map(|c| c.client_share).sum();
        let mut assignment = vec![self.classes.len() - 1; self.clients as usize];
        let mut start = 0usize;
        let mut acc = 0.0;
        for (idx, class) in self.classes.iter().enumerate().take(self.classes.len() - 1) {
            acc += class.client_share / total_share;
            let end = ((self.clients as f64 * acc).round() as usize).min(self.clients as usize);
            for slot in assignment.iter_mut().take(end).skip(start) {
                *slot = idx;
            }
            start = end;
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_valid() {
        ServerConfig::paper(30, true).validate();
        ServerConfig::paper(40, false).validate();
        ServerConfig::quick(10, true).validate();
    }

    #[test]
    fn throttled_flag_controls_the_ladder() {
        assert!(ServerConfig::paper(30, true).throttle.enabled);
        assert!(!ServerConfig::paper(30, false).throttle.enabled);
    }

    #[test]
    fn paper_run_covers_the_figure_time_range() {
        let c = ServerConfig::paper(30, true);
        assert!(c.duration.as_secs() >= 28_800);
        assert_eq!(c.slice.as_secs(), 3_600);
    }

    #[test]
    #[should_panic(expected = "warm-up")]
    fn warmup_longer_than_run_rejected() {
        let mut c = ServerConfig::quick(5, true);
        c.warmup = SimDuration::from_secs(7200);
        c.validate();
    }

    #[test]
    fn default_config_has_one_catch_all_class() {
        let c = ServerConfig::quick(10, true);
        assert_eq!(c.classes.len(), 1);
        assert_eq!(c.classes[0].name, "default");
        assert_eq!(c.class_assignment(), vec![0; 10]);
        // The catch-all class uses the base ladder unchanged.
        assert_eq!(c.classes[0].scaled_throttle(&c.throttle), c.throttle);
    }

    #[test]
    fn standard_classes_validate_and_partition_clients() {
        let c = ServerConfig::quick(20, true).with_standard_classes();
        c.validate();
        let assignment = c.class_assignment();
        assert_eq!(assignment.len(), 20);
        let count = |idx: usize| assignment.iter().filter(|a| **a == idx).count();
        assert_eq!(count(0), 10, "50% share of 20 clients");
        assert_eq!(count(1), 6, "30% share");
        assert_eq!(count(2), 4, "20% share");
        // Assignment is deterministic and contiguous.
        assert_eq!(c.class_assignment(), assignment);
        assert!(assignment.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn threshold_scaling_keeps_ladder_invariants() {
        let c = ServerConfig::quick(10, true).with_standard_classes();
        for class in &c.classes {
            let t = class.scaled_throttle(&c.throttle);
            t.validate();
        }
        // The "adhoc" class halves the thresholds.
        let adhoc = c.classes[1].scaled_throttle(&c.throttle);
        assert_eq!(
            adhoc.monitors[1].threshold_bytes,
            c.throttle.monitors[1].threshold_bytes / 2
        );
        // Exemption floor is clamped below the first scaled threshold.
        assert!(adhoc.exempt_bytes <= adhoc.monitors[0].threshold_bytes);
    }

    #[test]
    fn activation_order_is_identity_for_a_single_class() {
        let c = ServerConfig::quick(10, true);
        assert_eq!(c.activation_order(), (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn activation_order_interleaves_classes_proportionally() {
        let c = ServerConfig::quick(20, true).with_standard_classes();
        let order = c.activation_order();
        assert_eq!(order.len(), 20);
        // Every client appears exactly once.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
        // Any partial prefix covers every class roughly by share: with
        // shares 50/30/20 over 20 clients, the first 5 activations must
        // already include all three classes.
        let assignment = c.class_assignment();
        let classes_in = |n: usize| {
            let mut seen = std::collections::HashSet::new();
            for client in &order[..n] {
                seen.insert(assignment[*client as usize]);
            }
            seen.len()
        };
        assert_eq!(classes_in(5), 3, "first 5 activations miss a class");
        // And the 10-client prefix is close to the 5/3/2 share split.
        let mut counts = [0usize; 3];
        for client in &order[..10] {
            counts[assignment[*client as usize]] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!((4..=6).contains(&counts[0]), "default {counts:?}");
        assert!((2..=4).contains(&counts[1]), "adhoc {counts:?}");
        assert!((1..=3).contains(&counts[2]), "report {counts:?}");
    }

    #[test]
    fn policy_kind_parses_and_names_round_trip() {
        for kind in PolicyKind::all() {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("cost-based"), Some(PolicyKind::CostBased));
        assert_eq!(PolicyKind::parse("fifo"), None);
    }

    #[test]
    fn policy_levels_follow_the_throttle() {
        let c = ServerConfig::quick(5, true);
        assert_eq!(PolicyKind::Ladder.levels(&c.throttle), 3);
        assert_eq!(PolicyKind::Pid.levels(&c.throttle), 1);
        assert_eq!(PolicyKind::CostBased.levels(&c.throttle), 1);
        // A disabled throttle runs the inert ladder whatever the kind.
        let baseline = ServerConfig::quick(5, false);
        for kind in PolicyKind::all() {
            assert_eq!(kind.levels(&baseline.throttle), 3);
        }
    }

    #[test]
    fn default_policy_is_the_paper_ladder() {
        assert_eq!(ServerConfig::paper(10, true).policy, PolicyKind::Ladder);
        assert_eq!(ServerConfig::quick(10, true).policy, PolicyKind::Ladder);
    }

    #[test]
    fn degradation_machinery_defaults_off() {
        // The chaos layer is opt-in: stock configurations run without a
        // breaker, retry budget or deadline, so pre-existing goldens and
        // baselines are unaffected.
        let c = ServerConfig::paper(10, true);
        assert!(!c.breaker.enabled);
        assert_eq!(c.retry_budget, 0);
        assert_eq!(c.query_deadline, None);
        assert_eq!(c.shards, 1, "sharding must be opt-in");
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let mut c = ServerConfig::quick(5, true);
        c.shards = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn zero_query_deadline_rejected() {
        let mut c = ServerConfig::quick(5, true);
        c.query_deadline = Some(SimDuration::ZERO);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "oversubscribe")]
    fn oversubscribed_grant_fractions_rejected() {
        let mut c = ServerConfig::quick(5, true).with_standard_classes();
        c.classes[0].grant_fraction = 0.9;
        c.validate();
    }

    fn source(class: usize) -> ArrivalSourceConfig {
        ArrivalSourceConfig {
            name: "web".to_string(),
            process: ArrivalProcess::Poisson { rate_per_sec: 50.0 },
            class,
            max_in_flight: 64,
            modeled_clients: 100_000,
        }
    }

    #[test]
    fn class_bounds_match_class_assignment() {
        for clients in [1u32, 7, 10, 20, 33] {
            let mut c = ServerConfig::quick(clients, true).with_standard_classes();
            c.clients = clients;
            let assignment = c.class_assignment();
            let bounds = c.class_bounds();
            assert_eq!(bounds.len(), c.classes.len() + 1);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap(), clients);
            for (client, class) in assignment.iter().enumerate() {
                let client = client as u32;
                assert!(
                    bounds[*class] <= client && client < bounds[*class + 1],
                    "client {client} of {clients}: class {class} vs bounds {bounds:?}"
                );
            }
        }
    }

    #[test]
    fn arrival_sources_allow_a_zero_client_population() {
        let mut c = ServerConfig::quick(1, true);
        c.clients = 0;
        c.arrivals.push(source(0));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "arrival source")]
    fn zero_clients_without_sources_rejected() {
        let mut c = ServerConfig::quick(1, true);
        c.clients = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "classes exist")]
    fn arrival_source_with_unknown_class_rejected() {
        let mut c = ServerConfig::quick(5, true);
        c.arrivals.push(source(3));
        c.validate();
    }
}
