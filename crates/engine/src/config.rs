//! Server / experiment configuration.

use serde::{Deserialize, Serialize};
use throttledb_core::ThrottleConfig;
use throttledb_membroker::BrokerConfig;
use throttledb_sim::SimDuration;
use throttledb_workload::ClientModel;

/// Configuration of one simulated server run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// CPUs on the machine (paper: 8 × 700 MHz Xeon).
    pub cpus: u32,
    /// Memory broker configuration (paper: 4 GB).
    pub broker: BrokerConfig,
    /// Gateway-ladder configuration (enabled = throttled run).
    pub throttle: ThrottleConfig,
    /// Number of closed-loop clients.
    pub clients: u32,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Warm-up period excluded from reported results (the paper drops the
    /// ramp-up and starts its figures at an intermediate time index).
    pub warmup: SimDuration,
    /// Width of one reporting slice in the throughput figures.
    pub slice: SimDuration,
    /// Client think/retry behaviour.
    pub client_model: ClientModel,
    /// RNG seed (figures regenerate identically for a given seed).
    pub seed: u64,

    // --- calibration of the simulated hardware -------------------------------
    /// Seconds of compile CPU per optimizer transformation on one 700 MHz
    /// core. 35 000 transformations ≈ 50 s, matching the paper's
    /// "queries ... generally compile for 10-90 seconds".
    pub compile_seconds_per_transformation: f64,
    /// Fixed compile CPU floor (parsing/binding) in seconds.
    pub compile_seconds_base: f64,
    /// Number of discrete memory-growth steps a simulated compilation takes.
    pub compile_steps: u32,
    /// Fraction of a plan's statistical footprint that one execution actually
    /// reads (index access, partition pruning). Keeps executions in the
    /// paper's 30 s – 10 min band.
    pub io_touched_fraction: f64,
    /// Aggregate sequential I/O bandwidth of the RAID array, bytes/second
    /// (paper: 2-channel Ultra3 SCSI, 8 spindles).
    pub io_bandwidth_bytes_per_sec: f64,
    /// Size of the hot working set the buffer pool caches (dimension tables,
    /// indexes, hot fact ranges).
    pub hot_working_set_bytes: u64,
    /// CPU parallelism one query's execution can exploit.
    pub exec_parallelism: f64,
    /// Calibration factor applied to the execution model's per-row CPU cost.
    /// The optimizer's row counts describe the full-scale warehouse without
    /// the bitmap filters and vectorized execution a production engine uses;
    /// this factor brings simulated executions into the paper's observed
    /// 30 s – 10 min band.
    pub exec_cpu_calibration: f64,
    /// How long a query may wait for its execution memory grant before
    /// failing with a resource error.
    pub grant_timeout: SimDuration,
    /// Interval between broker recalculations / housekeeping ticks.
    pub broker_tick: SimDuration,
    /// Fraction of OLTP/diagnostic queries mixed into the stream.
    pub oltp_fraction: f64,
}

impl ServerConfig {
    /// The paper's evaluation configuration with `clients` concurrent users
    /// and throttling enabled or disabled.
    pub fn paper(clients: u32, throttled: bool) -> Self {
        let throttle = if throttled {
            ThrottleConfig::paper_machine()
        } else {
            ThrottleConfig::disabled(8)
        };
        ServerConfig {
            cpus: 8,
            broker: BrokerConfig::paper_machine(),
            throttle,
            clients,
            // The paper plots 10800 s .. 28800 s after warm-up; we simulate
            // 8 hours and drop the first 3 as warm-up, giving the same
            // five 3600-second slices.
            duration: SimDuration::from_secs(8 * 3600),
            warmup: SimDuration::from_secs(3 * 3600),
            slice: SimDuration::from_secs(3600),
            client_model: ClientModel::default(),
            seed: 2007,
            compile_seconds_per_transformation: 1.4e-3,
            compile_seconds_base: 2.0,
            compile_steps: 16,
            io_touched_fraction: 0.05,
            io_bandwidth_bytes_per_sec: 160.0e6,
            hot_working_set_bytes: 8 << 30,
            exec_parallelism: 4.0,
            exec_cpu_calibration: 0.04,
            grant_timeout: SimDuration::from_secs(900),
            broker_tick: SimDuration::from_secs(5),
            oltp_fraction: 0.05,
        }
    }

    /// A shortened configuration for tests and quick demos: same machine,
    /// fewer clients, 1 simulated hour with a 15-minute warm-up and
    /// 10-minute slices.
    pub fn quick(clients: u32, throttled: bool) -> Self {
        ServerConfig {
            duration: SimDuration::from_secs(3600),
            warmup: SimDuration::from_secs(900),
            slice: SimDuration::from_secs(600),
            ..ServerConfig::paper(clients, throttled)
        }
    }

    /// Panics on inconsistent settings.
    pub fn validate(&self) {
        assert!(self.cpus > 0);
        assert!(self.clients > 0);
        assert!(
            self.warmup < self.duration,
            "warm-up must end before the run does"
        );
        assert!(!self.slice.is_zero());
        assert!(self.compile_steps >= 2);
        assert!(self.io_bandwidth_bytes_per_sec > 0.0);
        assert!((0.0..=1.0).contains(&self.io_touched_fraction));
        assert!(self.exec_parallelism >= 1.0);
        assert!(self.exec_cpu_calibration > 0.0);
        self.broker.validate();
        self.throttle.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_valid() {
        ServerConfig::paper(30, true).validate();
        ServerConfig::paper(40, false).validate();
        ServerConfig::quick(10, true).validate();
    }

    #[test]
    fn throttled_flag_controls_the_ladder() {
        assert!(ServerConfig::paper(30, true).throttle.enabled);
        assert!(!ServerConfig::paper(30, false).throttle.enabled);
    }

    #[test]
    fn paper_run_covers_the_figure_time_range() {
        let c = ServerConfig::paper(30, true);
        assert!(c.duration.as_secs() >= 28_800);
        assert_eq!(c.slice.as_secs(), 3_600);
    }

    #[test]
    #[should_panic(expected = "warm-up")]
    fn warmup_longer_than_run_rejected() {
        let mut c = ServerConfig::quick(5, true);
        c.warmup = SimDuration::from_secs(7200);
        c.validate();
    }
}
