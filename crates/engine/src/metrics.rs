//! Run metrics: everything the figures and tables are built from.

use serde::{Deserialize, Serialize};
use throttledb_core::ThrottleStats;
use throttledb_governor::PoolStats;
use throttledb_sim::{GaugeTimeline, SimDuration, SimTime, TimeSeries};

/// Why a query failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// Out-of-memory during compilation or grant acquisition.
    OutOfMemory,
    /// Aborted because a gateway wait exceeded its timeout.
    CompileTimeout,
    /// Timed out waiting for an execution memory grant.
    GrantTimeout,
}

/// Per-workload-class results of one run (one entry per configured class).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Class name.
    pub name: String,
    /// Number of clients assigned to the class.
    pub clients: u32,
    /// Successful completions (whole run).
    pub completed: u64,
    /// Successful completions after warm-up.
    pub completed_after_warmup: u64,
    /// Failed queries.
    pub failed: u64,
    /// Queries completed with a best-effort plan.
    pub best_effort_plans: u64,
    /// The class ladder's statistics (including per-gateway wait
    /// histograms).
    pub throttle: ThrottleStats,
    /// The class grant pool's statistics (including the grant-wait
    /// histogram).
    pub grants: PoolStats,
}

/// Metrics collected over one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Successful completions bucketed per slice (the paper's figures 3-5).
    pub completed: TimeSeries,
    /// Failures bucketed per slice.
    pub failed: TimeSeries,
    /// Out-of-memory failures.
    pub oom_failures: u64,
    /// Compile-gateway timeout failures.
    pub compile_timeouts: u64,
    /// Grant-wait timeout failures.
    pub grant_timeouts: u64,
    /// Queries completed with a best-effort plan.
    pub best_effort_plans: u64,
    /// Total successful completions after warm-up.
    pub completed_after_warmup: u64,
    /// Compilation-memory timeline (total across concurrent compilations).
    pub compile_memory: GaugeTimeline,
    /// Final gateway-ladder statistics, merged across all workload classes.
    pub throttle: ThrottleStats,
    /// Per-workload-class breakdown (one entry per configured class).
    pub classes: Vec<ClassMetrics>,
    /// Warm-up boundary used by the reporting helpers.
    pub warmup: SimTime,
    /// Slice width.
    pub slice: SimDuration,
    /// Total simulation events the run's event loop dispatched (the sweep
    /// harness divides this by wall time for events/sec).
    pub events_dispatched: u64,
    /// Peak number of simultaneously pending events in the event queue.
    pub peak_queue_depth: usize,
}

impl RunMetrics {
    /// Fresh metrics for a run with the given slice width and warm-up.
    pub fn new(slice: SimDuration, warmup: SimTime, throttle_levels: usize) -> Self {
        RunMetrics {
            completed: TimeSeries::new("completed", slice),
            failed: TimeSeries::new("failed", slice),
            oom_failures: 0,
            compile_timeouts: 0,
            grant_timeouts: 0,
            best_effort_plans: 0,
            completed_after_warmup: 0,
            compile_memory: GaugeTimeline::new("compile-memory"),
            throttle: ThrottleStats::new(throttle_levels),
            classes: Vec::new(),
            warmup,
            slice,
            events_dispatched: 0,
            peak_queue_depth: 0,
        }
    }

    /// Record a successful completion.
    pub fn record_completion(&mut self, at: SimTime) {
        self.completed.record(at);
        if at >= self.warmup {
            self.completed_after_warmup += 1;
        }
    }

    /// Record a failure.
    pub fn record_failure(&mut self, at: SimTime, kind: FailureKind) {
        self.failed.record(at);
        match kind {
            FailureKind::OutOfMemory => self.oom_failures += 1,
            FailureKind::CompileTimeout => self.compile_timeouts += 1,
            FailureKind::GrantTimeout => self.grant_timeouts += 1,
        }
    }

    /// Total failures.
    pub fn total_failures(&self) -> u64 {
        self.oom_failures + self.compile_timeouts + self.grant_timeouts
    }

    /// Mean completions per slice after warm-up (the figures' sustained level).
    pub fn sustained_throughput_per_slice(&self) -> f64 {
        self.completed.mean_per_bucket_from(self.warmup)
    }

    /// The `(slice start seconds, completions)` rows of a throughput figure,
    /// post-warm-up only.
    pub fn figure_rows(&self) -> Vec<(u64, u64)> {
        self.completed
            .iter()
            .filter(|(t, _)| *t >= self.warmup)
            .map(|(t, c)| (t.as_secs(), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics::new(SimDuration::from_secs(3600), SimTime::from_secs(7200), 3)
    }

    #[test]
    fn completions_split_around_warmup() {
        let mut m = metrics();
        m.record_completion(SimTime::from_secs(100));
        m.record_completion(SimTime::from_secs(8000));
        m.record_completion(SimTime::from_secs(9000));
        assert_eq!(m.completed.total(), 3);
        assert_eq!(m.completed_after_warmup, 2);
        assert!(m.sustained_throughput_per_slice() > 0.0);
    }

    #[test]
    fn failures_are_classified() {
        let mut m = metrics();
        m.record_failure(SimTime::from_secs(10), FailureKind::OutOfMemory);
        m.record_failure(SimTime::from_secs(20), FailureKind::CompileTimeout);
        m.record_failure(SimTime::from_secs(30), FailureKind::CompileTimeout);
        m.record_failure(SimTime::from_secs(40), FailureKind::GrantTimeout);
        assert_eq!(m.oom_failures, 1);
        assert_eq!(m.compile_timeouts, 2);
        assert_eq!(m.grant_timeouts, 1);
        assert_eq!(m.total_failures(), 4);
        assert_eq!(m.failed.total(), 4);
    }

    #[test]
    fn figure_rows_exclude_warmup_slices() {
        let mut m = metrics();
        m.record_completion(SimTime::from_secs(100));
        m.record_completion(SimTime::from_secs(7300));
        let rows = m.figure_rows();
        assert!(rows.iter().all(|(t, _)| *t >= 7200));
        assert_eq!(rows.iter().map(|(_, c)| *c).sum::<u64>(), 1);
    }
}
