//! Run metrics: everything the figures and tables are built from.

use serde::{Deserialize, Serialize};
use throttledb_core::ThrottleStats;
use throttledb_governor::PoolStats;
use throttledb_sim::{GaugeTimeline, SimDuration, SimTime, TimeSeries};

/// Why a query failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// Out-of-memory during compilation or grant acquisition.
    OutOfMemory,
    /// Aborted because a gateway wait exceeded its timeout.
    CompileTimeout,
    /// Timed out waiting for an execution memory grant.
    GrantTimeout,
}

/// Per-workload-class results of one run (one entry per configured class).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Class name.
    pub name: String,
    /// Number of clients assigned to the class.
    pub clients: u32,
    /// Successful completions (whole run).
    pub completed: u64,
    /// Successful completions after warm-up.
    pub completed_after_warmup: u64,
    /// Failed queries.
    pub failed: u64,
    /// Queries completed with a best-effort plan.
    pub best_effort_plans: u64,
    /// Arrivals shed by this class's circuit breaker.
    pub shed: u64,
    /// State transitions of this class's circuit breaker.
    pub breaker_transitions: u64,
    /// The class ladder's statistics (including per-gateway wait
    /// histograms).
    pub throttle: ThrottleStats,
    /// The class grant pool's statistics (including the grant-wait
    /// histogram).
    pub grants: PoolStats,
}

/// Per-arrival-source results of one run (one entry per configured
/// open-loop source).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalSourceMetrics {
    /// Source name.
    pub name: String,
    /// Size of the user population the source models.
    pub modeled_clients: u32,
    /// Total arrivals offered (admitted + shed).
    pub arrivals: u64,
    /// Arrivals admitted into the pipeline.
    pub admitted: u64,
    /// Arrivals shed at the door (concurrency cap or breaker).
    pub shed: u64,
    /// Admitted arrivals that completed.
    pub completed: u64,
    /// Admitted arrivals that failed out of the pipeline.
    pub failed: u64,
}

/// Metrics collected over one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Successful completions bucketed per slice (the paper's figures 3-5).
    pub completed: TimeSeries,
    /// Failures bucketed per slice.
    pub failed: TimeSeries,
    /// Out-of-memory failures.
    pub oom_failures: u64,
    /// Compile-gateway timeout failures.
    pub compile_timeouts: u64,
    /// Grant-wait timeout failures.
    pub grant_timeouts: u64,
    /// Queries completed with a best-effort plan.
    pub best_effort_plans: u64,
    /// Total successful completions after warm-up.
    pub completed_after_warmup: u64,
    /// Compilation-memory timeline (total across concurrent compilations).
    pub compile_memory: GaugeTimeline,
    /// Final gateway-ladder statistics, merged across all workload classes.
    pub throttle: ThrottleStats,
    /// Per-workload-class breakdown (one entry per configured class).
    pub classes: Vec<ClassMetrics>,
    /// Warm-up boundary used by the reporting helpers.
    pub warmup: SimTime,
    /// Slice width.
    pub slice: SimDuration,
    /// Total simulation events the run's event loop dispatched (the sweep
    /// harness divides this by wall time for events/sec).
    pub events_dispatched: u64,
    /// Peak number of simultaneously pending events in the event queue.
    pub peak_queue_depth: usize,
    /// Arrivals shed by the circuit breakers (load-shed while open).
    pub shed: u64,
    /// Circuit-breaker state transitions, summed across classes (flapping
    /// shows up here).
    pub breaker_transitions: u64,
    /// Arrivals admitted in brownout mode (small enough for the breaker's
    /// exemption while it was open).
    pub brownout_admits: u64,
    /// Retry chains abandoned because the per-client retry budget or the
    /// total query deadline was exhausted (the client gave up and moved on
    /// instead of churning the wheel).
    pub retries_abandoned: u64,
    /// Completions that landed inside an active fault window.
    pub completed_during_fault: u64,
    /// The installed faults' active windows, clamped to the run
    /// (see [`crate::fault::FaultSpec`]); empty for fault-free runs.
    pub fault_windows: Vec<(SimTime, SimTime)>,
    /// Total configured run length (recovery measurements need the end of
    /// the observation window).
    pub run_duration: SimDuration,
    /// Total open-loop arrivals offered, across all sources (admitted +
    /// shed). 0 for purely closed-loop runs.
    pub arrivals: u64,
    /// Open-loop arrivals admitted into the pipeline.
    pub arrivals_admitted: u64,
    /// Open-loop arrivals shed at the door (concurrency cap or breaker).
    pub arrivals_shed: u64,
    /// Streaming FNV-1a digest over every arrival's admission decision
    /// (time, source, outcome). Identical digests ⇒ identical per-arrival
    /// decisions — the determinism witness for runs too large to trace.
    /// Holds the FNV offset basis for runs without sources.
    pub arrival_digest: u64,
    /// Per-source breakdown (one entry per configured arrival source).
    pub arrival_sources: Vec<ArrivalSourceMetrics>,
}

impl RunMetrics {
    /// Fresh metrics for a run with the given slice width and warm-up.
    pub fn new(slice: SimDuration, warmup: SimTime, throttle_levels: usize) -> Self {
        RunMetrics {
            completed: TimeSeries::new("completed", slice),
            failed: TimeSeries::new("failed", slice),
            oom_failures: 0,
            compile_timeouts: 0,
            grant_timeouts: 0,
            best_effort_plans: 0,
            completed_after_warmup: 0,
            compile_memory: GaugeTimeline::new("compile-memory"),
            throttle: ThrottleStats::new(throttle_levels),
            classes: Vec::new(),
            warmup,
            slice,
            events_dispatched: 0,
            peak_queue_depth: 0,
            shed: 0,
            breaker_transitions: 0,
            brownout_admits: 0,
            retries_abandoned: 0,
            completed_during_fault: 0,
            fault_windows: Vec::new(),
            run_duration: SimDuration::ZERO,
            arrivals: 0,
            arrivals_admitted: 0,
            arrivals_shed: 0,
            arrival_digest: 0xcbf2_9ce4_8422_2325,
            arrival_sources: Vec::new(),
        }
    }

    /// Record a successful completion.
    pub fn record_completion(&mut self, at: SimTime) {
        self.completed.record(at);
        if at >= self.warmup {
            self.completed_after_warmup += 1;
        }
    }

    /// Record a failure.
    pub fn record_failure(&mut self, at: SimTime, kind: FailureKind) {
        self.failed.record(at);
        match kind {
            FailureKind::OutOfMemory => self.oom_failures += 1,
            FailureKind::CompileTimeout => self.compile_timeouts += 1,
            FailureKind::GrantTimeout => self.grant_timeouts += 1,
        }
    }

    /// Total failures.
    pub fn total_failures(&self) -> u64 {
        self.oom_failures + self.compile_timeouts + self.grant_timeouts
    }

    /// Mean completions per slice after warm-up (the figures' sustained level).
    pub fn sustained_throughput_per_slice(&self) -> f64 {
        self.completed.mean_per_bucket_from(self.warmup)
    }

    /// Total simulated seconds during which at least the recorded fault
    /// windows were active (windows may overlap; this sums them as given).
    pub fn fault_seconds(&self) -> f64 {
        self.fault_windows
            .iter()
            .map(|(s, e)| e.as_secs_f64() - s.as_secs_f64())
            .sum()
    }

    /// Goodput under fault: successful completions per second while a
    /// fault was active. 0.0 for fault-free runs.
    pub fn goodput_under_fault(&self) -> f64 {
        let secs = self.fault_seconds();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed_during_fault as f64 / secs
        }
    }

    /// Time-to-recovery in seconds: from the instant the last fault
    /// cleared until the start of the first reporting slice whose
    /// completion count reaches 90% of the pre-fault baseline (the mean
    /// over slices fully before the first fault). Returns 0.0 for
    /// fault-free runs or when there is no pre-fault baseline to recover
    /// to, and the remaining observation window when the run never
    /// recovers — a lower bound that still ranks policies.
    pub fn time_to_recovery(&self) -> f64 {
        let Some(&(first_start, _)) = self.fault_windows.first() else {
            return 0.0;
        };
        let clear = self
            .fault_windows
            .iter()
            .map(|(_, e)| *e)
            .max()
            .unwrap_or(first_start);
        // Baseline: mean completions/slice over slices that end at or
        // before the first fault begins.
        let (mut sum, mut n) = (0u64, 0u64);
        for (t, c) in self.completed.iter() {
            if t + self.slice <= first_start {
                sum += c;
                n += 1;
            }
        }
        if n == 0 || sum == 0 {
            return 0.0;
        }
        let baseline = sum as f64 / n as f64;
        let target = 0.9 * baseline;
        for (t, c) in self.completed.iter() {
            if t >= clear && c as f64 >= target {
                return (t.as_secs_f64() - clear.as_secs_f64()).max(0.0);
            }
        }
        let end = SimTime::ZERO + self.run_duration;
        (end.as_secs_f64() - clear.as_secs_f64()).max(0.0)
    }

    /// The `(slice start seconds, completions)` rows of a throughput figure,
    /// post-warm-up only.
    pub fn figure_rows(&self) -> Vec<(u64, u64)> {
        self.completed
            .iter()
            .filter(|(t, _)| *t >= self.warmup)
            .map(|(t, c)| (t.as_secs(), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics::new(SimDuration::from_secs(3600), SimTime::from_secs(7200), 3)
    }

    #[test]
    fn completions_split_around_warmup() {
        let mut m = metrics();
        m.record_completion(SimTime::from_secs(100));
        m.record_completion(SimTime::from_secs(8000));
        m.record_completion(SimTime::from_secs(9000));
        assert_eq!(m.completed.total(), 3);
        assert_eq!(m.completed_after_warmup, 2);
        assert!(m.sustained_throughput_per_slice() > 0.0);
    }

    #[test]
    fn failures_are_classified() {
        let mut m = metrics();
        m.record_failure(SimTime::from_secs(10), FailureKind::OutOfMemory);
        m.record_failure(SimTime::from_secs(20), FailureKind::CompileTimeout);
        m.record_failure(SimTime::from_secs(30), FailureKind::CompileTimeout);
        m.record_failure(SimTime::from_secs(40), FailureKind::GrantTimeout);
        assert_eq!(m.oom_failures, 1);
        assert_eq!(m.compile_timeouts, 2);
        assert_eq!(m.grant_timeouts, 1);
        assert_eq!(m.total_failures(), 4);
        assert_eq!(m.failed.total(), 4);
    }

    #[test]
    fn goodput_under_fault_divides_by_fault_seconds() {
        let mut m = metrics();
        assert_eq!(m.goodput_under_fault(), 0.0, "fault-free run");
        m.fault_windows = vec![
            (SimTime::from_secs(100), SimTime::from_secs(200)),
            (SimTime::from_secs(400), SimTime::from_secs(500)),
        ];
        m.completed_during_fault = 50;
        assert!((m.fault_seconds() - 200.0).abs() < 1e-9);
        assert!((m.goodput_under_fault() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn time_to_recovery_finds_the_first_recovered_slice() {
        // 600 s slices; baseline 10/slice before the fault at 3600 s,
        // depressed during it, recovered two slices after the 7200 s clear.
        let mut m = RunMetrics::new(SimDuration::from_secs(600), SimTime::ZERO, 3);
        m.run_duration = SimDuration::from_secs(14_400);
        for slice in 0..6 {
            m.completed
                .record_n(SimTime::from_secs(slice * 600 + 1), 10);
        }
        for slice in 6..12 {
            m.completed.record_n(SimTime::from_secs(slice * 600 + 1), 2);
        }
        for slice in 14..24 {
            m.completed
                .record_n(SimTime::from_secs(slice * 600 + 1), 10);
        }
        m.fault_windows = vec![(SimTime::from_secs(3600), SimTime::from_secs(7200))];
        // Clear at 7200 s; slices 12 and 13 are still at 0, slice 14
        // (8400 s) reaches the 90% baseline again.
        assert!((m.time_to_recovery() - 1200.0).abs() < 1e-9);
        // A run that never recovers reports the remaining window.
        m.completed = TimeSeries::new("completed", SimDuration::from_secs(600));
        for slice in 0..6 {
            m.completed
                .record_n(SimTime::from_secs(slice * 600 + 1), 10);
        }
        assert!((m.time_to_recovery() - 7200.0).abs() < 1e-9);
        // No faults: trivially recovered.
        m.fault_windows.clear();
        assert_eq!(m.time_to_recovery(), 0.0);
    }

    #[test]
    fn figure_rows_exclude_warmup_slices() {
        let mut m = metrics();
        m.record_completion(SimTime::from_secs(100));
        m.record_completion(SimTime::from_secs(7300));
        let rows = m.figure_rows();
        assert!(rows.iter().all(|(t, _)| *t >= 7200));
        assert_eq!(rows.iter().map(|(_, c)| *c).sum::<u64>(), 1);
    }
}
