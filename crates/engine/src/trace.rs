//! The recorded admission/grant event stream of a run.
//!
//! When tracing is enabled (see [`crate::server::Server::enable_trace`]),
//! the pipeline stages record every admission-control decision the run
//! makes: submissions, gateway blocks, best-effort finishes, grant queueing
//! and issuance, completions, failures, and the running compile-memory
//! peaks. The scenario subsystem (`throttledb-scenario`) serializes this
//! stream to a line-oriented text format and replays it deterministically
//! for regression comparison — a recorded trace is a golden file that a
//! later build must reproduce byte for byte.

use crate::metrics::FailureKind;
use serde::{Deserialize, Serialize};
use throttledb_governor::BreakerState;
use throttledb_sim::SimTime;

/// One recorded admission-control event.
///
/// Events carry only policy-visible facts (virtual timestamps, query ids,
/// byte counts), never wall-clock time or host state, so a trace is stable
/// across machines and builds as long as the policy code behaves the same.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A scenario phase began. Recorded by the scenario runner at each
    /// phase boundary; segments the stream for per-phase replay.
    PhaseStart {
        /// Boundary time.
        at: SimTime,
        /// Phase name.
        name: String,
        /// Active client count for the phase.
        clients: u32,
    },
    /// A client submitted a query.
    Submitted {
        /// Submission time.
        at: SimTime,
        /// Query id (unique within the run).
        query: u64,
        /// Submitting client.
        client: u32,
        /// Workload-class index of the client.
        class: usize,
    },
    /// A compilation blocked at a gateway of its class ladder.
    GatewayBlocked {
        /// Block time.
        at: SimTime,
        /// Query id.
        query: u64,
        /// Gateway level (0-based).
        level: usize,
    },
    /// The ladder finished a compilation best-effort instead of blocking.
    BestEffort {
        /// Decision time.
        at: SimTime,
        /// Query id.
        query: u64,
    },
    /// An execution memory-grant request could not be served immediately
    /// and was queued.
    GrantQueued {
        /// Queue time.
        at: SimTime,
        /// Query id.
        query: u64,
        /// Requested grant bytes.
        bytes: u64,
    },
    /// Execution began with a memory grant.
    ExecStarted {
        /// Start time.
        at: SimTime,
        /// Query id.
        query: u64,
        /// Granted bytes (may be less than requested).
        bytes: u64,
    },
    /// The query completed successfully.
    Completed {
        /// Completion time.
        at: SimTime,
        /// Query id.
        query: u64,
    },
    /// The query failed.
    Failed {
        /// Failure time.
        at: SimTime,
        /// Query id.
        query: u64,
        /// Why it failed.
        kind: FailureKind,
    },
    /// Aggregate compilation memory reached a new high since the last
    /// phase boundary.
    CompilePeak {
        /// Sample time.
        at: SimTime,
        /// Aggregate compile bytes in use.
        bytes: u64,
    },
    /// An installed fault became active (see [`crate::fault::FaultSpec`]).
    FaultInjected {
        /// Injection time.
        at: SimTime,
        /// Index into the installed fault list.
        fault: u32,
    },
    /// An installed fault's window ended and its effects were reverted.
    FaultCleared {
        /// Clear time.
        at: SimTime,
        /// Index into the installed fault list.
        fault: u32,
    },
    /// A class circuit breaker shed an arriving query (load-shed; the
    /// client backs off and retries).
    Shed {
        /// Shed time.
        at: SimTime,
        /// Query id the arrival would have become.
        query: u64,
    },
    /// A class circuit breaker changed state.
    BreakerTransition {
        /// Transition time.
        at: SimTime,
        /// Workload-class index of the breaker.
        class: usize,
        /// The state entered.
        state: BreakerState,
    },
    /// End of the recording.
    End {
        /// Final time.
        at: SimTime,
    },
}

/// A streaming consumer of trace events.
///
/// When a sink is installed (see [`crate::Server::set_trace_sink`]) the
/// server hands every recorded event to it *as it happens*, before (and
/// independently of) the buffered [`crate::Server::take_trace`] vector.
/// This is the hook the binary `throttledb-trace v2` writer uses to record
/// multi-million-event runs at O(1) memory: the sink serializes each event
/// straight to an `io::Write` instead of materializing the stream.
///
/// Sinks must be infallible from the server's point of view; an I/O-backed
/// sink should stash its first error internally and surface it when the
/// stream is finalized.
pub trait TraceSink {
    /// Observe one recorded event, in run order.
    fn event(&mut self, event: &TraceEvent);
}

impl TraceEvent {
    /// The virtual time at which the event was recorded.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::PhaseStart { at, .. }
            | TraceEvent::Submitted { at, .. }
            | TraceEvent::GatewayBlocked { at, .. }
            | TraceEvent::BestEffort { at, .. }
            | TraceEvent::GrantQueued { at, .. }
            | TraceEvent::ExecStarted { at, .. }
            | TraceEvent::Completed { at, .. }
            | TraceEvent::Failed { at, .. }
            | TraceEvent::CompilePeak { at, .. }
            | TraceEvent::FaultInjected { at, .. }
            | TraceEvent::FaultCleared { at, .. }
            | TraceEvent::Shed { at, .. }
            | TraceEvent::BreakerTransition { at, .. }
            | TraceEvent::End { at } => *at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_extracts_the_timestamp_of_every_variant() {
        let t = SimTime::from_secs(42);
        let events = [
            TraceEvent::PhaseStart {
                at: t,
                name: "p".into(),
                clients: 4,
            },
            TraceEvent::Submitted {
                at: t,
                query: 1,
                client: 0,
                class: 0,
            },
            TraceEvent::GatewayBlocked {
                at: t,
                query: 1,
                level: 2,
            },
            TraceEvent::BestEffort { at: t, query: 1 },
            TraceEvent::GrantQueued {
                at: t,
                query: 1,
                bytes: 7,
            },
            TraceEvent::ExecStarted {
                at: t,
                query: 1,
                bytes: 7,
            },
            TraceEvent::Completed { at: t, query: 1 },
            TraceEvent::Failed {
                at: t,
                query: 1,
                kind: FailureKind::OutOfMemory,
            },
            TraceEvent::CompilePeak { at: t, bytes: 9 },
            TraceEvent::FaultInjected { at: t, fault: 0 },
            TraceEvent::FaultCleared { at: t, fault: 0 },
            TraceEvent::Shed { at: t, query: 1 },
            TraceEvent::BreakerTransition {
                at: t,
                class: 0,
                state: BreakerState::Open,
            },
            TraceEvent::End { at: t },
        ];
        for ev in events {
            assert_eq!(ev.at(), t);
        }
    }
}
