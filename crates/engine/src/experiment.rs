//! The experiments that regenerate the paper's figures and tables.

use crate::config::ServerConfig;
use crate::metrics::{ClassMetrics, RunMetrics};
use crate::profile::WorkloadProfiles;
use crate::server::Server;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use throttledb_core::{GatewayLadder, LadderDecision, ThrottleConfig};
use throttledb_sim::{GaugeTimeline, SimDuration, SimTime};

/// A throttled-vs-unthrottled pair of runs at one client count
/// (Figures 3, 4 and 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputComparison {
    /// Number of clients.
    pub clients: u32,
    /// The throttled run.
    pub throttled: RunMetrics,
    /// The baseline (non-throttled) run.
    pub unthrottled: RunMetrics,
}

impl ThroughputComparison {
    /// Relative throughput improvement of throttling
    /// (`throttled / unthrottled − 1`), using post-warm-up completions.
    pub fn improvement(&self) -> f64 {
        let t = self.throttled.completed_after_warmup as f64;
        let u = self.unthrottled.completed_after_warmup as f64;
        if u == 0.0 {
            if t == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            t / u - 1.0
        }
    }

    /// Print the figure in the paper's format: completions per time slice.
    pub fn print(&self, figure_name: &str) {
        println!(
            "== {figure_name}: Successful Queries/Time ({} clients) ==",
            self.clients
        );
        println!(
            "{:>12} {:>12} {:>14}",
            "time (s)", "throttled", "non-throttled"
        );
        let t_rows = self.throttled.figure_rows();
        let u_rows = self.unthrottled.figure_rows();
        for (i, (secs, count)) in t_rows.iter().enumerate() {
            let u = u_rows.get(i).map(|(_, c)| *c).unwrap_or(0);
            println!("{:>12} {:>12} {:>14}", secs, count, u);
        }
        println!(
            "sustained/slice: throttled {:.1} vs non-throttled {:.1}  (improvement {:+.0}%)",
            self.throttled.sustained_throughput_per_slice(),
            self.unthrottled.sustained_throughput_per_slice(),
            self.improvement() * 100.0
        );
        println!(
            "failures: throttled {} (oom {}, compile-timeout {}, grant-timeout {}) vs non-throttled {} (oom {})",
            self.throttled.total_failures(),
            self.throttled.oom_failures,
            self.throttled.compile_timeouts,
            self.throttled.grant_timeouts,
            self.unthrottled.total_failures(),
            self.unthrottled.oom_failures,
        );
    }
}

/// Run the throughput experiment (Figures 3–5) at `clients` clients using
/// `base` for everything except the throttle flag.
pub fn throughput_experiment(base: &ServerConfig, clients: u32) -> ThroughputComparison {
    let profiles = Arc::new(WorkloadProfiles::characterize_sales(base));
    throughput_experiment_with_profiles(base, clients, &profiles)
}

/// Same as [`throughput_experiment`] but reusing already-characterized
/// profiles (the client-sweep and ablation harnesses share them).
pub fn throughput_experiment_with_profiles(
    base: &ServerConfig,
    clients: u32,
    profiles: &Arc<WorkloadProfiles>,
) -> ThroughputComparison {
    let mut throttled_cfg = base.clone();
    throttled_cfg.clients = clients;
    throttled_cfg.throttle = ThrottleConfig::for_cpus(base.cpus);
    let mut unthrottled_cfg = throttled_cfg.clone();
    unthrottled_cfg.throttle = ThrottleConfig::disabled(base.cpus);

    ThroughputComparison {
        clients,
        throttled: Server::new(throttled_cfg, profiles.clone()).run(),
        unthrottled: Server::new(unthrottled_cfg, profiles.clone()).run(),
    }
}

/// One row of the client sweep (Table T2: locating the 30-client knee).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRow {
    /// Client count.
    pub clients: u32,
    /// Post-warm-up completions, throttled.
    pub throttled_completed: u64,
    /// Post-warm-up completions, non-throttled.
    pub unthrottled_completed: u64,
    /// Failures, throttled.
    pub throttled_failures: u64,
    /// Failures, non-throttled.
    pub unthrottled_failures: u64,
}

/// Sweep the client count (§5.2: "this benchmark produces maximum throughput
/// with 30 clients ... increasing the number of users beyond 30 saturates the
/// server and causes some operations to fail").
///
/// # Examples
///
/// ```
/// use throttledb_engine::{client_sweep, ServerConfig};
/// use throttledb_sim::SimDuration;
///
/// // A miniature sweep (10 simulated minutes per run) over two client
/// // counts; each row holds a throttled and an unthrottled run.
/// let mut base = ServerConfig::quick(4, true);
/// base.duration = SimDuration::from_secs(600);
/// base.warmup = SimDuration::from_secs(60);
/// base.slice = SimDuration::from_secs(60);
/// let rows = client_sweep(&base, &[2, 4]);
/// assert_eq!(rows.len(), 2);
/// assert_eq!(rows[0].clients, 2);
/// assert!(rows.iter().any(|r| r.throttled_completed > 0));
/// ```
pub fn client_sweep(base: &ServerConfig, client_counts: &[u32]) -> Vec<SweepRow> {
    let profiles = Arc::new(WorkloadProfiles::characterize_sales(base));
    client_counts
        .iter()
        .map(|&clients| {
            let cmp = throughput_experiment_with_profiles(base, clients, &profiles);
            SweepRow {
                clients,
                throttled_completed: cmp.throttled.completed_after_warmup,
                unthrottled_completed: cmp.unthrottled.completed_after_warmup,
                throttled_failures: cmp.throttled.total_failures(),
                unthrottled_failures: cmp.unthrottled.total_failures(),
            }
        })
        .collect()
}

/// One row of the per-class client sweep: the class breakdown of one
/// throttled run at a given client count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassSweepRow {
    /// Total client count of the run.
    pub clients: u32,
    /// Per-class results, in configuration order.
    pub per_class: Vec<ClassMetrics>,
}

/// Per-class variant of the client sweep: run the throttled configuration
/// of `base` (which should carry multiple workload classes, e.g. from
/// [`ServerConfig::with_standard_classes`]) at each client count and report
/// the class breakdowns. Deterministic for a given seed.
pub fn client_sweep_per_class(base: &ServerConfig, client_counts: &[u32]) -> Vec<ClassSweepRow> {
    let profiles = Arc::new(WorkloadProfiles::characterize_sales(base));
    client_counts
        .iter()
        .map(|&clients| {
            let mut cfg = base.clone();
            cfg.clients = clients;
            let metrics = Server::new(cfg, profiles.clone()).run();
            ClassSweepRow {
                clients,
                per_class: metrics.classes,
            }
        })
        .collect()
}

/// One ablation configuration result (design-choice experiments beyond the
/// paper's figures).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Post-warm-up completions.
    pub completed: u64,
    /// Total failures.
    pub failures: u64,
    /// Compile-gateway timeouts.
    pub compile_timeouts: u64,
    /// Best-effort completions.
    pub best_effort: u64,
}

/// Ablate the design choices §4.1 calls out: number of monitors, dynamic
/// thresholds, best-effort plans.
pub fn ablation(base: &ServerConfig, clients: u32) -> Vec<AblationRow> {
    let profiles = Arc::new(WorkloadProfiles::characterize_sales(base));
    let mut rows = Vec::new();
    let mut run = |label: &str, throttle: ThrottleConfig| {
        let mut cfg = base.clone();
        cfg.clients = clients;
        cfg.throttle = throttle;
        let m = Server::new(cfg, profiles.clone()).run();
        rows.push(AblationRow {
            label: label.to_string(),
            completed: m.completed_after_warmup,
            failures: m.total_failures(),
            compile_timeouts: m.compile_timeouts,
            best_effort: m.best_effort_plans,
        });
    };

    run(
        "no throttling (baseline)",
        ThrottleConfig::disabled(base.cpus),
    );
    run(
        "paper: 3 monitors + dynamic + best-effort",
        ThrottleConfig::for_cpus(base.cpus),
    );

    let mut one_monitor = ThrottleConfig::for_cpus(base.cpus);
    one_monitor.monitors.truncate(1);
    one_monitor.monitors[0].dynamic_fraction = 1.0;
    run("1 monitor only", one_monitor);

    let mut two_monitors = ThrottleConfig::for_cpus(base.cpus);
    two_monitors.monitors.truncate(2);
    two_monitors.monitors[0].dynamic_fraction = 0.6;
    two_monitors.monitors[1].dynamic_fraction = 0.4;
    run("2 monitors", two_monitors);

    let mut static_thresholds = ThrottleConfig::for_cpus(base.cpus);
    static_thresholds.dynamic_thresholds = false;
    run("3 monitors, static thresholds", static_thresholds);

    let mut no_best_effort = ThrottleConfig::for_cpus(base.cpus);
    no_best_effort.best_effort_plans = false;
    run("3 monitors, no best-effort plans", no_best_effort);

    rows
}

/// Figure 2: the compilation-throttling example — three compilations whose
/// memory growth is gated by the ladder while background compilations hold
/// gateway slots. Returns one memory timeline per query, whose flat portions
/// are the blocked spans.
pub fn figure2_timeline() -> Vec<(String, GaugeTimeline)> {
    const MB: u64 = 1 << 20;
    let mut ladder = GatewayLadder::new(ThrottleConfig::for_cpus(1));

    // Background compilations occupy three of the four small-gateway slots
    // and the single medium slot, so Q1/Q2/Q3 contend exactly as in Figure 2.
    let background: Vec<_> = (0..3).map(|_| ladder.begin_task()).collect();
    for b in &background {
        ladder.report_memory(*b, 5 * MB, SimTime::ZERO);
    }
    let blocker = ladder.begin_task();
    ladder.report_memory(blocker, 40 * MB, SimTime::ZERO);

    // Q1 grows fast, Q2 slower, Q3 arrives later and is blocked behind Q2.
    let specs = [
        ("Q1", 0u64, 12 * MB, 140 * MB),
        ("Q2", 5, 6 * MB, 70 * MB),
        ("Q3", 20, 8 * MB, 60 * MB),
    ];
    let mut timelines: Vec<(String, GaugeTimeline)> = specs
        .iter()
        .map(|(name, _, _, _)| (name.to_string(), GaugeTimeline::new(*name)))
        .collect();
    let tasks: Vec<_> = specs.iter().map(|_| ladder.begin_task()).collect();
    let mut bytes = vec![0u64; specs.len()];
    let mut blocked = vec![false; specs.len()];
    let mut done = vec![false; specs.len()];

    for second in 0..240u64 {
        let now = SimTime::from_secs(second);
        // Background holders release over time, just like the unnamed "other
        // queries" of the paper's example.
        if second == 60 {
            ladder.finish_task(blocker, now);
        }
        if second == 90 {
            ladder.finish_task(background[0], now);
        }
        for (i, (_, start, rate, peak)) in specs.iter().enumerate() {
            if done[i] || second < *start {
                continue;
            }
            if !blocked[i] {
                bytes[i] = (bytes[i] + rate).min(*peak);
            }
            match ladder.report_memory(tasks[i], bytes[i], now) {
                LadderDecision::Proceed => {
                    blocked[i] = false;
                    if bytes[i] >= *peak {
                        done[i] = true;
                        ladder.finish_task(tasks[i], now);
                        timelines[i].1.record(now, bytes[i]);
                        timelines[i].1.record(now + SimDuration::from_secs(1), 0);
                        continue;
                    }
                }
                LadderDecision::Wait { .. } => blocked[i] = true,
                LadderDecision::FinishBestEffort => {
                    done[i] = true;
                    ladder.finish_task(tasks[i], now);
                }
            }
            timelines[i].1.record(now, bytes[i]);
        }
    }
    timelines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shows_blocking_plateaus_and_release() {
        let timelines = figure2_timeline();
        assert_eq!(timelines.len(), 3);
        let q1 = &timelines[0].1;
        let q2 = &timelines[1].1;
        // Every query eventually frees its memory.
        for (name, t) in &timelines {
            assert!(t.max_value() > 0, "{name} never allocated");
            assert_eq!(
                t.samples().last().map(|(_, v)| *v),
                Some(0),
                "{name} must finish"
            );
        }
        // Q1's growth is interrupted by at least one blocked plateau of
        // several seconds (the flat portions of the paper's figure).
        assert!(
            q1.longest_plateau() >= SimDuration::from_secs(5),
            "Q1 plateau {:?}",
            q1.longest_plateau()
        );
        assert!(q2.longest_plateau() >= SimDuration::from_secs(5));
        // Q1 reaches a higher peak than Q2 (it is the bigger query).
        assert!(q1.max_value() > q2.max_value());
    }

    #[test]
    fn quick_throughput_experiment_prefers_throttling_under_overload() {
        // A shortened, overloaded configuration: 24 clients on the 1-hour
        // quick run. The full paper-scale runs live in the bench harness.
        let base = ServerConfig::quick(24, true);
        let cmp = throughput_experiment(&base, 24);
        assert!(cmp.throttled.completed_after_warmup > 0);
        assert!(cmp.unthrottled.completed_after_warmup > 0);
        // Throttling must not be materially worse, and the unthrottled run
        // must show the memory-pressure symptoms the paper describes.
        assert!(
            cmp.improvement() > -0.10,
            "throttling should not lose throughput: {:+.1}%",
            cmp.improvement() * 100.0
        );
        assert!(
            cmp.unthrottled.compile_memory.max_value() > cmp.throttled.compile_memory.max_value()
        );
    }

    #[test]
    fn per_class_sweep_is_seed_stable() {
        let base = ServerConfig::quick(12, true).with_standard_classes();
        let a = client_sweep_per_class(&base, &[8, 12]);
        let b = client_sweep_per_class(&base, &[8, 12]);
        assert_eq!(a.len(), 2);
        for (ra, rb) in a.iter().zip(b.iter()) {
            assert_eq!(ra.clients, rb.clients);
            assert_eq!(ra.per_class.len(), 3);
            for (ca, cb) in ra.per_class.iter().zip(rb.per_class.iter()) {
                assert_eq!(ca.name, cb.name);
                assert_eq!(ca.completed, cb.completed, "class {} unstable", ca.name);
                assert_eq!(ca.failed, cb.failed);
            }
        }
        // The sweep covers every configured class with clients.
        assert!(a[1].per_class.iter().all(|c| c.clients > 0));
    }

    #[test]
    fn ablation_covers_the_design_choices() {
        let base = ServerConfig::quick(12, true);
        let rows = ablation(&base, 12);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|r| r.label.contains("baseline")));
        assert!(rows.iter().all(|r| r.completed > 0));
    }
}
