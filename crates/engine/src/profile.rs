//! Per-template compilation/execution profiles, characterized with the real
//! optimizer before a simulation run.

use crate::config::ServerConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use throttledb_catalog::{sales_schema, tpch_schema, Catalog, SalesScale};
use throttledb_executor::ExecutionModel;
use throttledb_optimizer::Optimizer;
use throttledb_sim::SimRng;
use throttledb_sqlparse::parse;
use throttledb_workload::{
    oltp_templates, sales_templates, tpch_like_templates, QueryTemplate, TemplateCatalog,
    TemplateId,
};

/// Measured characteristics of compiling and executing one template.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompileProfile {
    /// Peak compilation memory measured with the real optimizer.
    pub peak_compile_bytes: u64,
    /// Transformation-rule applications the real optimizer performed.
    pub transformations: u64,
    /// Compile CPU seconds on the reference machine (derived from the
    /// transformation count via the calibration constants).
    pub compile_cpu_seconds: f64,
    /// Execution CPU seconds on one reference core.
    pub exec_cpu_seconds: f64,
    /// Bytes of base data the plan touches.
    pub exec_footprint_bytes: u64,
    /// Execution memory grant the plan requests.
    pub exec_grant_bytes: u64,
}

impl CompileProfile {
    /// Apply per-submission jitter (different literals, plan-shape noise).
    pub fn jittered(&self, rng: &mut SimRng) -> CompileProfile {
        let j = rng.jitter(0.20);
        let k = rng.jitter(0.25);
        CompileProfile {
            peak_compile_bytes: (self.peak_compile_bytes as f64 * j) as u64,
            transformations: (self.transformations as f64 * j) as u64,
            compile_cpu_seconds: self.compile_cpu_seconds * j,
            exec_cpu_seconds: self.exec_cpu_seconds * k,
            exec_footprint_bytes: (self.exec_footprint_bytes as f64 * k) as u64,
            exec_grant_bytes: (self.exec_grant_bytes as f64 * k) as u64,
        }
    }
}

/// Profiles for every template in the workload.
///
/// Templates are interned into a [`TemplateCatalog`] at characterization
/// time; the engine's hot path looks profiles up by [`TemplateId`] (a dense
/// vector index, no hashing, no string cloning), while the name-keyed map
/// remains for reporting and the table binaries.
#[derive(Debug, Clone)]
pub struct WorkloadProfiles {
    profiles: HashMap<String, CompileProfile>,
    /// The interned templates, id-addressable.
    catalog: TemplateCatalog,
    /// Profiles indexed by [`TemplateId::index`], parallel to the catalog.
    by_id: Vec<CompileProfile>,
    /// DSS templates in workload order.
    pub dss: Vec<QueryTemplate>,
    /// TPC-H-like comparison templates (empty unless characterized via
    /// [`WorkloadProfiles::characterize_full`]).
    pub tpch: Vec<QueryTemplate>,
    /// OLTP/diagnostic templates.
    pub oltp: Vec<QueryTemplate>,
}

impl WorkloadProfiles {
    /// Characterize the SALES workload against the full-scale warehouse by
    /// compiling each template once with the real optimizer.
    pub fn characterize_sales(config: &ServerConfig) -> Self {
        let catalog = sales_schema(SalesScale::paper());
        Self::characterize(config, &catalog, sales_templates(), oltp_templates())
    }

    /// Characterize all three template families: SALES and OLTP against the
    /// warehouse schema, plus the TPC-H-like set against the TPC-H schema.
    /// Scenario runs use this so phases can shift their mix toward any
    /// family.
    pub fn characterize_full(config: &ServerConfig) -> Self {
        let mut profiles = Self::characterize_sales(config);
        let tpch_catalog = tpch_schema(30.0);
        let tpch = Self::characterize(config, &tpch_catalog, tpch_like_templates(), Vec::new());
        // Graft the TPC-H templates into the intern table; their ids extend
        // the SALES/OLTP id space without disturbing it.
        for (id, template) in tpch.catalog.iter() {
            let new_id = profiles.catalog.intern(template.clone());
            debug_assert_eq!(new_id.index(), profiles.by_id.len());
            profiles.by_id.push(tpch.by_id[id.index()]);
        }
        profiles.profiles.extend(tpch.profiles);
        profiles.tpch = tpch.dss;
        profiles
    }

    /// Characterize an arbitrary template set against a catalog.
    pub fn characterize(
        config: &ServerConfig,
        catalog: &Catalog,
        dss: Vec<QueryTemplate>,
        oltp: Vec<QueryTemplate>,
    ) -> Self {
        let optimizer = Optimizer::new(catalog);
        let exec_model = ExecutionModel::default();
        let mut profiles = HashMap::new();
        let mut template_catalog = TemplateCatalog::new();
        let mut by_id = Vec::new();
        for template in dss.iter().chain(oltp.iter()) {
            let stmt = parse(&template.sql).expect("templates parse");
            let outcome = optimizer.optimize(&stmt).expect("templates compile");
            let exec = exec_model.profile(&outcome.plan, catalog);
            let profile = CompileProfile {
                peak_compile_bytes: outcome.stats.peak_memory_bytes,
                transformations: outcome.stats.transformations,
                compile_cpu_seconds: config.compile_seconds_base
                    + outcome.stats.transformations as f64
                        * config.compile_seconds_per_transformation,
                exec_cpu_seconds: exec.cpu_seconds * config.exec_cpu_calibration,
                exec_footprint_bytes: exec.footprint_bytes,
                exec_grant_bytes: exec.requested_grant_bytes,
            };
            let id = template_catalog.intern(template.clone());
            debug_assert_eq!(id.index(), by_id.len());
            by_id.push(profile);
            profiles.insert(template.name.clone(), profile);
        }
        WorkloadProfiles {
            profiles,
            catalog: template_catalog,
            by_id,
            dss,
            tpch: Vec::new(),
            oltp,
        }
    }

    /// Profile of a template by name.
    pub fn profile(&self, name: &str) -> &CompileProfile {
        &self.profiles[name]
    }

    /// Profile of an interned template — the hot-path lookup: a dense
    /// vector index, no hashing.
    pub fn profile_of(&self, id: TemplateId) -> &CompileProfile {
        &self.by_id[id.index()]
    }

    /// The intern table of every characterized template.
    pub fn catalog(&self) -> &TemplateCatalog {
        &self.catalog
    }

    /// Number of characterized templates.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when no templates were characterized.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sales_characterization_matches_the_papers_magnitudes() {
        let config = ServerConfig::paper(30, true);
        let profiles = WorkloadProfiles::characterize_sales(&config);
        assert_eq!(profiles.dss.len(), 10);
        assert!(profiles.len() >= 14);
        for t in &profiles.dss {
            let p = profiles.profile(&t.name);
            // Compile memory: tens to hundreds of MB per SALES query.
            assert!(
                p.peak_compile_bytes > 50 << 20,
                "{} compile memory too small: {}",
                t.name,
                p.peak_compile_bytes
            );
            // Compile time in the paper's 10-90 s band.
            assert!(
                (10.0..=90.0).contains(&p.compile_cpu_seconds),
                "{} compile time {}s outside 10-90s",
                t.name,
                p.compile_cpu_seconds
            );
            assert!(p.exec_grant_bytes > 0);
            assert!(p.exec_footprint_bytes > 1 << 30);
        }
        // OLTP queries compile in well under a second and use trivial memory.
        for t in &profiles.oltp {
            let p = profiles.profile(&t.name);
            assert!(p.peak_compile_bytes < 2 << 20, "{}", t.name);
            assert!(p.compile_cpu_seconds < 5.0);
        }
    }

    #[test]
    fn full_characterization_covers_the_tpch_family() {
        let config = ServerConfig::quick(8, true);
        let profiles = WorkloadProfiles::characterize_full(&config);
        assert_eq!(profiles.dss.len(), 10);
        assert!(!profiles.tpch.is_empty());
        for t in &profiles.tpch {
            let p = profiles.profile(&t.name);
            assert!(p.peak_compile_bytes > 0, "{} has no profile", t.name);
        }
        // SALES profiles survive the merge untouched.
        for t in &profiles.dss {
            assert!(profiles.profile(&t.name).peak_compile_bytes > 50 << 20);
        }
    }

    #[test]
    fn id_indexed_profiles_agree_with_name_lookup() {
        let config = ServerConfig::quick(8, true);
        let profiles = WorkloadProfiles::characterize_full(&config);
        assert_eq!(profiles.catalog().len(), profiles.len());
        for (id, template) in profiles.catalog().iter() {
            assert_eq!(
                profiles.profile_of(id),
                profiles.profile(&template.name),
                "{} diverges between id and name lookup",
                template.name
            );
        }
        // Every family list is interned and reachable by id.
        assert_eq!(profiles.catalog().sales().len(), profiles.dss.len());
        assert_eq!(profiles.catalog().tpch().len(), profiles.tpch.len());
        assert_eq!(profiles.catalog().oltp().len(), profiles.oltp.len());
    }

    #[test]
    fn jitter_perturbs_but_preserves_magnitude() {
        let base = CompileProfile {
            peak_compile_bytes: 100 << 20,
            transformations: 30_000,
            compile_cpu_seconds: 45.0,
            exec_cpu_seconds: 120.0,
            exec_footprint_bytes: 10 << 30,
            exec_grant_bytes: 500 << 20,
        };
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            let j = base.jittered(&mut rng);
            assert!(j.peak_compile_bytes >= 75 << 20 && j.peak_compile_bytes <= 125 << 20);
            assert!(j.compile_cpu_seconds >= 30.0 && j.compile_cpu_seconds <= 60.0);
        }
    }
}
