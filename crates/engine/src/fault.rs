//! Deterministic fault injection: the engine half of the chaos layer.
//!
//! A [`FaultSpec`] describes one timed fault — a window on the virtual
//! clock during which some part of the simulated machine misbehaves. The
//! scenario crate builds these from its declarative `FaultPlan` and
//! installs them via [`crate::Server::install_faults`] before the run
//! starts; the server turns each spec into ordinary events on the timing
//! wheel (`FaultBegin` / `LeakStep` / `FaultEnd`), so faults replay
//! byte-identically like everything else in the simulation.
//!
//! Fault effects are applied to the *machine model*, not painted onto the
//! metrics: a memory leak allocates real bytes from the membroker (through
//! a ballast clerk the broker can see but never squeeze), a compile stall
//! multiplies the optimizer's service time, slot loss shrinks the effective
//! CPU count that the load factor divides by, a grant collapse scales the
//! class grant budgets at each broker tick, and a client surge genuinely
//! enlarges the closed-loop population. The admission policies and the
//! degradation machinery (backoff, circuit breaker, deadline fail-fast)
//! then react exactly as they would in a live server.

use serde::{Deserialize, Serialize};
use throttledb_sim::{SimDuration, SimTime};

/// What kind of fault a [`FaultSpec`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Leak memory: allocate `total_bytes` of ballast in `steps` equal
    /// increments spread over the fault window (each step jittered from
    /// the fault RNG stream), freed in full when the fault clears. The
    /// ballast is real brokered memory, so compilation targets shrink and
    /// out-of-memory pressure rises for the window's duration.
    MemoryLeak {
        /// Total ballast at the end of the ramp.
        total_bytes: u64,
        /// Number of allocation increments across the window.
        steps: u32,
    },
    /// Planner stall: multiply every compilation step's service time by
    /// `multiplier` (> 1) while the fault is active.
    CompileStall {
        /// Service-time multiplier (e.g. 6.0 = six times slower).
        multiplier: f64,
    },
    /// Executor slot loss: remove `slots` CPUs from the effective machine
    /// (restored when the fault clears). The load factor and execution
    /// times inflate accordingly.
    SlotLoss {
        /// CPUs lost; clamped so at least one CPU survives.
        slots: u32,
    },
    /// Grant-budget collapse: scale every class's execution-grant budget by
    /// `scale` (< 1) at each broker tick while active.
    GrantCollapse {
        /// Budget multiplier in (0, 1].
        scale: f64,
    },
    /// Thundering herd: add `extra_clients` to the active closed-loop
    /// population for the window (removed again when it clears).
    ClientSurge {
        /// Additional clients activated for the window.
        extra_clients: u32,
    },
}

/// One timed fault: a [`FaultKind`] active over `[start, start + duration)`
/// on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// When the fault begins.
    pub start: SimTime,
    /// How long it stays active.
    pub duration: SimDuration,
    /// What breaks.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Panics on inconsistent settings.
    pub fn validate(&self) {
        assert!(!self.duration.is_zero(), "fault window must be positive");
        match self.kind {
            FaultKind::MemoryLeak { total_bytes, steps } => {
                assert!(total_bytes > 0, "memory leak needs bytes to leak");
                assert!(steps > 0, "memory leak needs at least one step");
            }
            FaultKind::CompileStall { multiplier } => {
                assert!(multiplier > 1.0, "compile stall multiplier must be > 1");
            }
            FaultKind::SlotLoss { slots } => {
                assert!(slots > 0, "slot loss must lose at least one slot");
            }
            FaultKind::GrantCollapse { scale } => {
                assert!(
                    scale > 0.0 && scale <= 1.0,
                    "grant collapse scale must be in (0,1]"
                );
            }
            FaultKind::ClientSurge { extra_clients } => {
                assert!(extra_clients > 0, "client surge needs extra clients");
            }
        }
    }

    /// The instant the fault clears.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_validate_and_report_their_window() {
        let f = FaultSpec {
            start: SimTime::from_secs(100),
            duration: SimDuration::from_secs(60),
            kind: FaultKind::CompileStall { multiplier: 4.0 },
        };
        f.validate();
        assert_eq!(f.end(), SimTime::from_secs(160));
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn stall_multiplier_below_one_rejected() {
        FaultSpec {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
            kind: FaultKind::CompileStall { multiplier: 0.5 },
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn collapse_scale_above_one_rejected() {
        FaultSpec {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
            kind: FaultKind::GrantCollapse { scale: 1.5 },
        }
        .validate();
    }
}
