//! `scenario_runner --replay` must turn a damaged trace file into a clean
//! diagnostic and a nonzero exit — never a panic, and never a multi-minute
//! simulation that fails only at the end. These tests feed the real binary
//! a mid-file-truncated trace and a corrupted-line trace built from the
//! committed retry-storm golden.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn golden() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../scenario/tests/golden/retry_storm_quick_2007.trace");
    std::fs::read_to_string(&path).expect("committed golden trace exists")
}

fn temp_trace(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("throttledb_replay_errors_{name}.trace"));
    std::fs::write(&path, contents).expect("can write temp trace");
    path
}

fn replay(path: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scenario_runner"))
        .args(["retry_storm", "quick", "2007", "--replay"])
        .arg(path)
        .output()
        .expect("scenario_runner launches")
}

fn assert_clean_failure(out: &Output, case: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "{case}: damaged trace must exit nonzero, stderr:\n{stderr}"
    );
    assert_eq!(
        out.status.code(),
        Some(1),
        "{case}: decode failure is exit 1, stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("is not a valid trace"),
        "{case}: missing TraceError diagnostic, stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{case}: the runner panicked instead of reporting, stderr:\n{stderr}"
    );
    // Fail-fast contract: the diagnostic arrives before any simulation
    // output (the run banner goes to stderr only once a trace decodes).
    assert!(
        !stderr.contains("running scenario"),
        "{case}: runner simulated before validating the trace, stderr:\n{stderr}"
    );
}

#[test]
fn truncated_trace_is_a_diagnostic_not_a_panic() {
    let full = golden();
    // Keep the first half of the records, then cut the next line after its
    // keyword — a mid-line truncation that is a broken arity, not a shorter
    // but still well-formed record.
    let lines: Vec<&str> = full.lines().collect();
    let mid = lines.len() / 2;
    assert!(mid + 1 < lines.len(), "golden trace is non-trivial");
    let keyword = lines[mid].split(' ').next().unwrap();
    let truncated = format!("{}\n{keyword}", lines[..mid].join("\n"));
    let path = temp_trace("truncated", &truncated);
    let out = replay(&path);
    std::fs::remove_file(&path).ok();
    assert_clean_failure(&out, "truncated");
}

#[test]
fn corrupted_line_is_a_diagnostic_not_a_panic() {
    let full = golden();
    let lines: Vec<&str> = full.lines().collect();
    assert!(lines.len() > 4, "golden trace is non-trivial");
    // Replace a middle record with garbage that parses as no event kind.
    let mut corrupted: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    let mid = corrupted.len() / 2;
    corrupted[mid] = "submit not-a-number 42 SALES".to_string();
    let text = corrupted.join("\n") + "\n";
    let path = temp_trace("corrupted", &text);
    let out = replay(&path);
    std::fs::remove_file(&path).ok();
    assert_clean_failure(&out, "corrupted");
}

#[test]
fn missing_file_is_a_diagnostic_not_a_panic() {
    let path = std::env::temp_dir().join("throttledb_replay_errors_does_not_exist.trace");
    std::fs::remove_file(&path).ok();
    let out = replay(&path);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(
        stderr.contains("cannot read trace"),
        "missing-file diagnostic absent, stderr:\n{stderr}"
    );
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
}
