//! `scenario_runner --replay` must turn a damaged trace file into a clean
//! diagnostic and a nonzero exit — never a panic, and never a multi-minute
//! simulation that fails only at the end. These tests feed the real binary
//! mid-file-truncated and corrupted traces in both formats: v1 text built
//! from the committed retry-storm golden, and v2 binary built in-process
//! from the same events.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use throttledb_scenario::{Scale, Scenario, Trace, TraceWriterV2};

fn golden() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../scenario/tests/golden/retry_storm_quick_2007.trace");
    std::fs::read_to_string(&path).expect("committed golden trace exists")
}

/// The golden events re-encoded as a v2 binary stream, stamped with the
/// config digest `config_delta` away from the one this run expects — 0
/// produces a stream the runner replays cleanly.
fn golden_v2(config_delta: u64) -> Vec<u8> {
    let scenario = Scenario::builtin("retry_storm", Scale::Quick)
        .expect("builtin exists")
        .with_seed(2007);
    let catalog = scenario.trace_catalog();
    let config_digest = scenario.config_digest().wrapping_add(config_delta);
    let events = Trace::decode(&golden())
        .expect("committed golden decodes")
        .into_events();
    let mut bytes = Vec::new();
    let mut w = TraceWriterV2::new(&mut bytes, &catalog, config_digest).expect("Vec never fails");
    for ev in &events {
        w.write_event(ev).expect("Vec never fails");
    }
    w.finish().expect("Vec never fails");
    bytes
}

fn temp_trace(name: &str, contents: &str) -> PathBuf {
    temp_trace_bytes(name, contents.as_bytes())
}

fn temp_trace_bytes(name: &str, contents: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!("throttledb_replay_errors_{name}.trace"));
    std::fs::write(&path, contents).expect("can write temp trace");
    path
}

fn replay(path: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scenario_runner"))
        .args(["retry_storm", "quick", "2007", "--replay"])
        .arg(path)
        .output()
        .expect("scenario_runner launches")
}

fn assert_clean_failure(out: &Output, case: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "{case}: damaged trace must exit nonzero, stderr:\n{stderr}"
    );
    assert_eq!(
        out.status.code(),
        Some(1),
        "{case}: decode failure is exit 1, stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("is not a valid trace"),
        "{case}: missing TraceError diagnostic, stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{case}: the runner panicked instead of reporting, stderr:\n{stderr}"
    );
    // Fail-fast contract: the diagnostic arrives before any simulation
    // output (the run banner goes to stderr only once a trace decodes).
    assert!(
        !stderr.contains("running scenario"),
        "{case}: runner simulated before validating the trace, stderr:\n{stderr}"
    );
}

#[test]
fn truncated_trace_is_a_diagnostic_not_a_panic() {
    let full = golden();
    // Keep the first half of the records, then cut the next line after its
    // keyword — a mid-line truncation that is a broken arity, not a shorter
    // but still well-formed record.
    let lines: Vec<&str> = full.lines().collect();
    let mid = lines.len() / 2;
    assert!(mid + 1 < lines.len(), "golden trace is non-trivial");
    let keyword = lines[mid].split(' ').next().unwrap();
    let truncated = format!("{}\n{keyword}", lines[..mid].join("\n"));
    let path = temp_trace("truncated", &truncated);
    let out = replay(&path);
    std::fs::remove_file(&path).ok();
    assert_clean_failure(&out, "truncated");
}

#[test]
fn corrupted_line_is_a_diagnostic_not_a_panic() {
    let full = golden();
    let lines: Vec<&str> = full.lines().collect();
    assert!(lines.len() > 4, "golden trace is non-trivial");
    // Replace a middle record with garbage that parses as no event kind.
    let mut corrupted: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    let mid = corrupted.len() / 2;
    corrupted[mid] = "submit not-a-number 42 SALES".to_string();
    let text = corrupted.join("\n") + "\n";
    let path = temp_trace("corrupted", &text);
    let out = replay(&path);
    std::fs::remove_file(&path).ok();
    assert_clean_failure(&out, "corrupted");
}

#[test]
fn v2_intact_stream_replays_cleanly() {
    // Sanity anchor for the damage cases below: the same bytes, undamaged,
    // replay with exit 0.
    let path = temp_trace_bytes("v2_intact", &golden_v2(0));
    let out = replay(&path);
    std::fs::remove_file(&path).ok();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr:\n{stderr}");
}

#[test]
fn v2_truncated_frame_is_a_diagnostic_not_a_panic() {
    let mut bytes = golden_v2(0);
    // Cut mid-frame: past the header, short of the digest trailer.
    bytes.truncate(bytes.len() * 3 / 5);
    let path = temp_trace_bytes("v2_truncated", &bytes);
    let out = replay(&path);
    std::fs::remove_file(&path).ok();
    assert_clean_failure(&out, "v2 truncated");
}

#[test]
fn v2_corrupted_varint_is_a_diagnostic_not_a_panic() {
    let mut bytes = golden_v2(0);
    // A run of continuation bytes mid-block overflows every varint width
    // the decoder accepts.
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 12] {
        *b = 0xff;
    }
    let path = temp_trace_bytes("v2_bad_varint", &bytes);
    let out = replay(&path);
    std::fs::remove_file(&path).ok();
    assert_clean_failure(&out, "v2 corrupted varint");
}

#[test]
fn v2_flipped_payload_byte_is_a_diagnostic_not_a_panic() {
    let mut bytes = golden_v2(0);
    // One flipped bit near the end of the stream: even if the records
    // still decode, the incremental digest must catch it.
    let idx = bytes.len() - 32;
    bytes[idx] ^= 0x40;
    let path = temp_trace_bytes("v2_flipped", &bytes);
    let out = replay(&path);
    std::fs::remove_file(&path).ok();
    assert_clean_failure(&out, "v2 flipped byte");
}

#[test]
fn v2_unknown_version_is_a_diagnostic_not_a_panic() {
    let mut bytes = golden_v2(0);
    // "throttledb-trace v2\n" -> "throttledb-trace v3\n": the sniffer
    // rejects it as v2 and the v1 text decoder rejects the header line,
    // so a future-format file degrades to a clean diagnostic today.
    let idx = b"throttledb-trace v".len();
    assert_eq!(bytes[idx], b'2');
    bytes[idx] = b'3';
    let path = temp_trace_bytes("v2_version", &bytes);
    let out = replay(&path);
    std::fs::remove_file(&path).ok();
    assert_clean_failure(&out, "v2 unknown version");
}

#[test]
fn v2_config_digest_mismatch_fails_before_simulating() {
    // A well-formed stream stamped with a different run-config digest: the
    // runner must refuse before it simulates anything, with a diagnostic
    // naming both digests.
    let path = temp_trace_bytes("v2_config", &golden_v2(1));
    let out = replay(&path);
    std::fs::remove_file(&path).ok();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(
        stderr.contains("was recorded under a different configuration"),
        "config-mismatch diagnostic absent, stderr:\n{stderr}"
    );
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
    assert!(
        !stderr.contains("running scenario"),
        "runner simulated before the config check, stderr:\n{stderr}"
    );
}

#[test]
fn missing_file_is_a_diagnostic_not_a_panic() {
    let path = std::env::temp_dir().join("throttledb_replay_errors_does_not_exist.trace");
    std::fs::remove_file(&path).ok();
    let out = replay(&path);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(
        stderr.contains("cannot read trace"),
        "missing-file diagnostic absent, stderr:\n{stderr}"
    );
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
}
