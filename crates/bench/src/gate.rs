//! The BENCH regression gate.
//!
//! The gate diffs a current `BENCH_sweep.json`-cells or
//! `BENCH_policies.json` document against a committed baseline and reports
//! every metric that regressed beyond a relative tolerance. CI runs it
//! after the sweep step and fails the build on any regression; the
//! baseline-update workflow (see `README.md`) is the only way to accept an
//! intentional change.
//!
//! Both documents are hand-rolled JSON (the workspace `serde` is a no-op
//! stub), so the gate carries its own minimal recursive-descent parser —
//! enough for the two schemas it diffs, strict about everything it
//! accepts.
//!
//! Directionality is per metric: throughput-like metrics regress when they
//! *drop* below `baseline * (1 - tolerance)`; latency/failure-like metrics
//! regress when they *rise* above `baseline * (1 + tolerance)`. Each metric
//! also carries an absolute slack floor so zero-valued baselines stay
//! meaningful (a relative band around 0 has zero width). Neutral fields
//! (seeds, event counts, digests) are ignored. A cell present in the
//! baseline but missing from the current document is a coverage regression
//! and fails the gate outright.

use std::fmt::Write as _;

/// A parsed JSON value (only what the two BENCH schemas need).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as f64 (the gate only compares magnitudes).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving member order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A malformed document, with a byte offset for the error message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset the parser stopped at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!("expected '{}'", byte as char))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => self.error("expected a value"),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.error(format!("expected {text}"))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return self.error("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.error("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = match self.bytes.get(self.pos) {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    self.pos += 4;
                                    c
                                }
                                None => return self.error("bad \\u escape"),
                            }
                        }
                        _ => return self.error("bad escape"),
                    };
                    out.push(escaped);
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.error("invalid UTF-8"),
                    }
                }
                None => return self.error("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or(ParseError {
                at: start,
                message: "bad number".to_string(),
            })
    }
}

/// Parse one JSON document, requiring it to be fully consumed.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.error("trailing garbage");
    }
    Ok(v)
}

/// Whether a metric regresses by dropping or by rising.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// The gated metrics: direction plus an absolute slack floor. Fields not
/// listed here are identity (policy/scenario/seed) or informative (event
/// counts, digests, wall-clock) and are never gated.
///
/// The floor is what makes zero-valued baselines meaningful: a purely
/// relative band around 0 has zero width, so a lower-is-better metric at
/// 0.0 would flag any noise-scale increase (and a higher-is-better one
/// could never flag at all). The effective slack is
/// `max(tolerance * |baseline|, floor)` — floors are sized to each
/// metric's noise scale, well below any real regression.
const METRICS: &[(&str, Direction, f64)] = &[
    ("completed", Direction::HigherIsBetter, 1.0),
    ("throughput_per_slice", Direction::HigherIsBetter, 0.5),
    ("failed", Direction::LowerIsBetter, 1.0),
    ("p99_wait_us", Direction::LowerIsBetter, 1000.0),
    ("failure_rate", Direction::LowerIsBetter, 0.01),
    ("degrade_rate", Direction::LowerIsBetter, 0.01),
    // Resilience metrics (BENCH_resilience.json).
    ("goodput_under_fault", Direction::HigherIsBetter, 0.002),
    ("time_to_recovery_s", Direction::LowerIsBetter, 60.0),
    ("shed", Direction::LowerIsBetter, 2.0),
    ("retries_abandoned", Direction::LowerIsBetter, 2.0),
    ("breaker_transitions", Direction::LowerIsBetter, 2.0),
    // Open-loop arrival metrics (BENCH_sweep.json cells). Arrival counts
    // are deterministic per (scenario, seed), so any movement at all is a
    // semantic change; the floors only keep zero-valued closed-loop cells
    // from tripping on a scenario that later gains a small source.
    ("arrivals", Direction::HigherIsBetter, 2.0),
    ("arrivals_admitted", Direction::HigherIsBetter, 2.0),
    ("arrivals_shed", Direction::LowerIsBetter, 2.0),
    // Shard-scaling (BENCH_shard_scale.json aggregates). The speedup is a
    // same-machine events/sec ratio, so — unlike the raw rates, which stay
    // ungated — it transfers across machines; the floor absorbs scheduler
    // noise around a ~2-3x baseline without masking a real collapse back
    // toward 1x.
    ("shard_speedup", Direction::HigherIsBetter, 0.25),
    // Trace-codec metrics (BENCH_trace.json). Sizes and ratios are
    // deterministic per (codec, scenario); the throughput rates are
    // same-machine and stay ungated, but the v2-over-v1 speedups are
    // ratios and transfer across machines like shard_speedup does.
    ("bytes_per_event", Direction::LowerIsBetter, 0.5),
    ("size_ratio", Direction::HigherIsBetter, 0.5),
    ("encode_speedup", Direction::HigherIsBetter, 0.5),
    ("decode_speedup", Direction::HigherIsBetter, 0.5),
];

/// One extracted (cell-or-aggregate, metric) observation.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// "cell policy=pid scenario=compile_storm seed=2007" or
    /// "aggregate policy=pid scenario=compile_storm".
    pub key: String,
    /// Metric field name.
    pub metric: &'static str,
    /// The observed value (an aggregate contributes its `mean`).
    pub value: f64,
}

/// One metric that moved beyond tolerance (or a missing cell).
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The cell/aggregate and metric that regressed.
    pub what: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (`NaN` when the cell is missing entirely).
    pub current: f64,
}

fn entry_key(obj: &Value, kind: &str) -> String {
    let mut key = kind.to_string();
    for id in ["policy", "scenario", "codec"] {
        if let Some(v) = obj.get(id).and_then(Value::as_str) {
            let _ = write!(key, " {id}={v}");
        }
    }
    if let Some(seed) = obj.get("seed").and_then(Value::as_f64) {
        let _ = write!(key, " seed={seed}");
    }
    // Shard-scaling documents measure the *same* (scenario, seed) at
    // several shard counts; the count is identity there, or two cells
    // would collide on one key and a vanished shard count could hide.
    if let Some(shards) = obj.get("shards").and_then(Value::as_f64) {
        let _ = write!(key, " shards={shards}");
    }
    key
}

/// Extract every gated metric from a parsed BENCH document: the `cells`
/// array (flat numeric fields) and the `aggregates` array (nested
/// `{"mean": …, "ci95": …}` objects, gated on the mean).
pub fn extract(doc: &Value) -> Vec<MetricEntry> {
    let mut entries = Vec::new();
    for (section, kind) in [("cells", "cell"), ("aggregates", "aggregate")] {
        let Some(Value::Arr(items)) = doc.get(section) else {
            continue;
        };
        for obj in items {
            let key = entry_key(obj, kind);
            for &(metric, _, _) in METRICS {
                let value = match obj.get(metric) {
                    Some(v @ Value::Obj(_)) => v.get("mean").and_then(Value::as_f64),
                    Some(v) => v.as_f64(),
                    None => None,
                };
                if let Some(value) = value {
                    entries.push(MetricEntry {
                        key: key.clone(),
                        metric,
                        value,
                    });
                }
            }
        }
    }
    entries
}

fn direction_and_floor_of(metric: &str) -> (Direction, f64) {
    METRICS
        .iter()
        .find(|(m, _, _)| *m == metric)
        .map(|&(_, d, floor)| (d, floor))
        .expect("extract only yields gated metrics")
}

/// Diff `current` against `baseline` with a relative `tolerance` (0.10 =
/// ±10%). Returns every regression; an empty vector means the gate passes.
/// Cells present only in `current` (new scenarios/policies) are fine; cells
/// present only in `baseline` are failures.
pub fn compare(baseline: &Value, current: &Value, tolerance: f64) -> Vec<Regression> {
    let base_entries = extract(baseline);
    let current_entries = extract(current);
    let mut regressions = Vec::new();
    for base in &base_entries {
        let Some(cur) = current_entries
            .iter()
            .find(|e| e.key == base.key && e.metric == base.metric)
        else {
            regressions.push(Regression {
                what: format!("{} {}: missing from current results", base.key, base.metric),
                baseline: base.value,
                current: f64::NAN,
            });
            continue;
        };
        // The per-metric floor keeps zero and near-zero baselines honest:
        // the relative band collapses there, so without it a
        // lower-is-better metric at 0.0 trips on any noise-scale uptick
        // while a higher-is-better one can never trip at all.
        let (direction, floor) = direction_and_floor_of(base.metric);
        let slack = (tolerance * base.value.abs()).max(floor);
        let regressed = match direction {
            Direction::HigherIsBetter => cur.value < base.value - slack,
            Direction::LowerIsBetter => cur.value > base.value + slack,
        };
        if regressed {
            regressions.push(Regression {
                what: format!(
                    "{} {}: {} -> {} (tolerance ±{:.0}%)",
                    base.key,
                    base.metric,
                    base.value,
                    cur.value,
                    tolerance * 100.0
                ),
                baseline: base.value,
                current: cur.value,
            });
        }
    }
    regressions
}

/// Like [`compare`], from raw document text.
pub fn compare_text(
    baseline: &str,
    current: &str,
    tolerance: f64,
) -> Result<Vec<Regression>, ParseError> {
    Ok(compare(&parse(baseline)?, &parse(current)?, tolerance))
}

/// The gate's self-test: a synthetic baseline against (a) itself — must
/// pass — and (b) a copy with one metric regressed well beyond tolerance —
/// must fail. Returns an error string on any violated expectation, so the
/// CI step proves the gate can actually reject before it is trusted to
/// accept.
pub fn self_test() -> Result<(), String> {
    let baseline = r#"{
  "benchmark": "policies",
  "cells": [
    {"policy": "ladder", "scenario": "compile_storm", "seed": 2007,
     "completed": 1000, "failed": 10, "p99_wait_us": 50000,
     "throughput_per_slice": 120.5},
    {"policy": "ladder", "scenario": "retry_storm", "seed": 2007,
     "completed": 400, "failed": 30, "shed": 0,
     "retries_abandoned": 5, "breaker_transitions": 4,
     "goodput_under_fault": 0.02, "time_to_recovery_s": 600.0}
  ],
  "aggregates": [
    {"policy": "ladder", "scenario": "compile_storm", "seeds": 5,
     "throughput_per_slice": {"mean": 118.0, "ci95": 4.0},
     "failure_rate": {"mean": 0.01, "ci95": 0.002}},
    {"policy": "ladder", "scenario": "retry_storm", "seeds": 5,
     "goodput_under_fault": {"mean": 0.018, "ci95": 0.003},
     "time_to_recovery_s": {"mean": 640.0, "ci95": 90.0}},
    {"scenario": "open_loop_scale", "codec": "v2",
     "bytes_per_event": 5.1, "size_ratio": 5.5,
     "encode_speedup": 9.0, "decode_speedup": 8.0}
  ]
}"#;
    let regressed = baseline.replace("\"completed\": 1000", "\"completed\": 800");
    match compare_text(baseline, baseline, 0.10) {
        Ok(r) if r.is_empty() => {}
        Ok(r) => return Err(format!("identical documents flagged: {r:?}")),
        Err(e) => return Err(format!("self-test baseline failed to parse: {e:?}")),
    }
    match compare_text(baseline, &regressed, 0.10) {
        Ok(r) if r.len() == 1 && r[0].what.contains("completed") => {}
        Ok(r) => return Err(format!("20% completed drop not caught exactly once: {r:?}")),
        Err(e) => return Err(format!("self-test regressed doc failed to parse: {e:?}")),
    }
    // A drop inside the tolerance band must pass.
    let tolerated = baseline.replace("\"completed\": 1000", "\"completed\": 950");
    match compare_text(baseline, &tolerated, 0.10) {
        Ok(r) if r.is_empty() => {}
        Ok(r) => return Err(format!("5% drop inside ±10% flagged: {r:?}")),
        Err(e) => return Err(format!("self-test tolerated doc failed to parse: {e:?}")),
    }
    // The resilience metrics are gated too: a doubled recovery time in the
    // aggregate must be rejected...
    let slow_recovery = baseline.replace("\"mean\": 640.0", "\"mean\": 1400.0");
    match compare_text(baseline, &slow_recovery, 0.10) {
        Ok(r) if r.len() == 1 && r[0].what.contains("time_to_recovery_s") => {}
        Ok(r) => return Err(format!("recovery-time jump not caught exactly once: {r:?}")),
        Err(e) => return Err(format!("self-test recovery doc failed to parse: {e:?}")),
    }
    // ...while a zero-valued shed baseline tolerates noise-scale upticks
    // (the absolute floor) but not a real shed storm.
    let shed_noise = baseline.replace("\"shed\": 0", "\"shed\": 1");
    match compare_text(baseline, &shed_noise, 0.10) {
        Ok(r) if r.is_empty() => {}
        Ok(r) => return Err(format!("noise-scale shed uptick flagged: {r:?}")),
        Err(e) => return Err(format!("self-test shed doc failed to parse: {e:?}")),
    }
    let shed_storm = baseline.replace("\"shed\": 0", "\"shed\": 40");
    match compare_text(baseline, &shed_storm, 0.10) {
        Ok(r) if r.len() == 1 && r[0].what.contains("shed") => {}
        Ok(r) => return Err(format!("shed storm over a zero baseline not caught: {r:?}")),
        Err(e) => return Err(format!("self-test shed-storm doc failed to parse: {e:?}")),
    }
    // A trace-codec compression collapse must trip size_ratio.
    let bloated = baseline.replace("\"size_ratio\": 5.5", "\"size_ratio\": 2.0");
    match compare_text(baseline, &bloated, 0.10) {
        Ok(r) if r.len() == 1 && r[0].what.contains("size_ratio") => Ok(()),
        Ok(r) => Err(format!("codec size-ratio collapse not caught: {r:?}")),
        Err(e) => Err(format!("self-test codec doc failed to parse: {e:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_the_bench_shapes() {
        let doc = parse(
            r#"{"a": [1, -2.5, 1e3], "s": "x\"y\\z\nw", "u": "\u0041", "b": true, "n": null, "o": {"mean": 1.5}}"#,
        )
        .expect("valid document");
        assert_eq!(doc.get("s"), Some(&Value::Str("x\"y\\z\nw".to_string())));
        assert_eq!(doc.get("u"), Some(&Value::Str("A".to_string())));
        assert_eq!(
            doc.get("a"),
            Some(&Value::Arr(vec![
                Value::Num(1.0),
                Value::Num(-2.5),
                Value::Num(1000.0)
            ]))
        );
        assert_eq!(doc.get("o").unwrap().get("mean"), Some(&Value::Num(1.5)));
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} junk").is_err());
    }

    fn doc(completed: u64, p99: u64, mean: f64) -> String {
        format!(
            r#"{{"cells": [{{"policy": "pid", "scenario": "s", "seed": 1,
                 "completed": {completed}, "p99_wait_us": {p99},
                 "trace_digest": "ignored"}}],
                "aggregates": [{{"policy": "pid", "scenario": "s",
                 "failure_rate": {{"mean": {mean}, "ci95": 0.1}}}}]}}"#
        )
    }

    #[test]
    fn extraction_keys_cells_and_aggregates_distinctly() {
        let parsed = parse(&doc(100, 5000, 0.5)).unwrap();
        let entries = extract(&parsed);
        let keys: Vec<&str> = entries.iter().map(|e| e.key.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "cell policy=pid scenario=s seed=1",
                "cell policy=pid scenario=s seed=1",
                "aggregate policy=pid scenario=s",
            ]
        );
        let metrics: Vec<&str> = entries.iter().map(|e| e.metric).collect();
        assert_eq!(metrics, vec!["completed", "p99_wait_us", "failure_rate"]);
    }

    #[test]
    fn gate_is_directional() {
        let base = doc(100, 5000, 0.5);
        // completed up, p99 down, failure rate down: all improvements.
        let better = doc(200, 1000, 0.1);
        assert_eq!(compare_text(&base, &better, 0.10).unwrap(), vec![]);
        // The same magnitudes moved the other way all regress.
        let worse = doc(50, 20000, 0.9);
        let regressions = compare_text(&base, &worse, 0.10).unwrap();
        assert_eq!(regressions.len(), 3, "{regressions:?}");
    }

    #[test]
    fn gate_respects_the_tolerance_band() {
        let base = doc(100, 5000, 0.5);
        let inside = doc(91, 5400, 0.54);
        assert_eq!(compare_text(&base, &inside, 0.10).unwrap(), vec![]);
        let outside = doc(89, 5000, 0.5);
        assert_eq!(compare_text(&base, &outside, 0.10).unwrap().len(), 1);
    }

    #[test]
    fn missing_cells_fail_the_gate() {
        let base = doc(100, 5000, 0.5);
        let empty = r#"{"cells": [], "aggregates": []}"#;
        let regressions = compare_text(&base, empty, 0.10).unwrap();
        assert_eq!(regressions.len(), 3);
        assert!(regressions[0].what.contains("missing"));
        assert!(regressions[0].current.is_nan());
    }

    #[test]
    fn zero_baselines_tolerate_noise_but_not_jumps() {
        let base = doc(100, 5000, 0.0);
        let still_zero = doc(100, 5000, 0.0);
        assert_eq!(compare_text(&base, &still_zero, 0.10).unwrap(), vec![]);
        // Inside the absolute floor (failure_rate floor 0.01): noise, pass.
        let noise = doc(100, 5000, 0.005);
        assert_eq!(compare_text(&base, &noise, 0.10).unwrap(), vec![]);
        // Beyond the floor: a real jump over a zero baseline must trip even
        // though the relative band has zero width there.
        let jumped = doc(100, 5000, 0.2);
        assert_eq!(compare_text(&base, &jumped, 0.10).unwrap().len(), 1);
    }

    #[test]
    fn zero_baseline_counts_are_gated_in_both_directions() {
        // Lower-is-better over a zero baseline: the floor (shed: 2.0)
        // absorbs noise but catches a storm.
        let zero_shed = r#"{"cells": [{"scenario": "s", "seed": 1, "shed": 0}]}"#;
        let small = r#"{"cells": [{"scenario": "s", "seed": 1, "shed": 2}]}"#;
        assert_eq!(compare_text(zero_shed, small, 0.10).unwrap(), vec![]);
        let storm = r#"{"cells": [{"scenario": "s", "seed": 1, "shed": 50}]}"#;
        let trips = compare_text(zero_shed, storm, 0.10).unwrap();
        assert_eq!(trips.len(), 1, "{trips:?}");
        assert!(trips[0].what.contains("shed"));
        // Higher-is-better over a zero baseline: nonnegative metrics cannot
        // drop below zero, so equality passes and any improvement passes —
        // the gate must not manufacture a phantom regression from the
        // zero-width relative band.
        let zero_tput = r#"{"cells": [{"scenario": "s", "seed": 1, "completed": 0}]}"#;
        assert_eq!(compare_text(zero_tput, zero_tput, 0.10).unwrap(), vec![]);
        let improved = r#"{"cells": [{"scenario": "s", "seed": 1, "completed": 7}]}"#;
        assert_eq!(compare_text(zero_tput, improved, 0.10).unwrap(), vec![]);
    }

    #[test]
    fn arrival_metrics_are_gated_directionally() {
        let base = r#"{"cells": [{"scenario": "open_loop_poisson", "seed": 1,
            "arrivals": 1200, "arrivals_admitted": 1100, "arrivals_shed": 100,
            "arrival_digest": "ignored"}]}"#;
        // Identical arrivals pass.
        assert_eq!(compare_text(base, base, 0.10).unwrap(), vec![]);
        // An admission drop beyond tolerance trips arrivals_admitted.
        let fewer = base.replace("\"arrivals_admitted\": 1100", "\"arrivals_admitted\": 900");
        let trips = compare_text(base, &fewer, 0.10).unwrap();
        assert_eq!(trips.len(), 1, "{trips:?}");
        assert!(trips[0].what.contains("arrivals_admitted"));
        // A shed storm trips arrivals_shed.
        let stormy = base.replace("\"arrivals_shed\": 100", "\"arrivals_shed\": 400");
        let trips = compare_text(base, &stormy, 0.10).unwrap();
        assert_eq!(trips.len(), 1, "{trips:?}");
        assert!(trips[0].what.contains("arrivals_shed"));
    }

    #[test]
    fn shard_speedup_is_gated_per_shard_count() {
        let base = r#"{"cells": [
            {"scenario": "open_loop_scale", "seed": 2007, "shards": 1, "arrivals": 100},
            {"scenario": "open_loop_scale", "seed": 2007, "shards": 4, "arrivals": 100}],
          "aggregates": [
            {"scenario": "open_loop_scale", "shards": 4, "shard_speedup": 2.5}]}"#;
        // Identical documents pass; measurement noise within the floor passes.
        assert_eq!(compare_text(base, base, 0.10).unwrap(), vec![]);
        let noisy = base.replace("2.5", "2.3");
        assert_eq!(compare_text(base, &noisy, 0.10).unwrap(), vec![]);
        // A collapse back toward 1x trips shard_speedup.
        let collapsed = base.replace("2.5", "1.1");
        let trips = compare_text(base, &collapsed, 0.10).unwrap();
        assert_eq!(trips.len(), 1, "{trips:?}");
        assert!(trips[0].what.contains("shard_speedup"));
        // The shard count is identity: losing the 4-shard cell is a missing
        // cell, not a silent merge with its 1-shard sibling.
        let lost = base.replace(
            ",\n            {\"scenario\": \"open_loop_scale\", \"seed\": 2007, \"shards\": 4, \"arrivals\": 100}",
            "",
        );
        let trips = compare_text(base, &lost, 0.10).unwrap();
        assert_eq!(trips.len(), 1, "{trips:?}");
        assert!(trips[0].what.contains("shards=4") && trips[0].what.contains("missing"));
    }

    #[test]
    fn codec_metrics_are_keyed_and_gated() {
        let base = r#"{"cells": [
            {"scenario": "open_loop_scale", "codec": "v1", "bytes_per_event": 28.4},
            {"scenario": "open_loop_scale", "codec": "v2", "bytes_per_event": 5.1}],
          "aggregates": [
            {"scenario": "open_loop_scale", "codec": "v2",
             "size_ratio": 5.5, "encode_speedup": 9.0, "decode_speedup": 8.0}]}"#;
        assert_eq!(compare_text(base, base, 0.10).unwrap(), vec![]);
        // The codec is identity: the v1 and v2 cells must not collide, so
        // a bloat of only the v2 cell trips exactly that cell.
        let bloated = base.replace("\"bytes_per_event\": 5.1", "\"bytes_per_event\": 9.9");
        let trips = compare_text(base, &bloated, 0.10).unwrap();
        assert_eq!(trips.len(), 1, "{trips:?}");
        assert!(trips[0].what.contains("codec=v2") && trips[0].what.contains("bytes_per_event"));
        // A decode slowdown beyond tolerance trips decode_speedup.
        let slower = base.replace("\"decode_speedup\": 8.0", "\"decode_speedup\": 4.0");
        let trips = compare_text(base, &slower, 0.10).unwrap();
        assert_eq!(trips.len(), 1, "{trips:?}");
        assert!(trips[0].what.contains("decode_speedup"));
    }

    #[test]
    fn self_test_passes() {
        self_test().expect("the gate must prove it can reject");
    }
}
