//! Table T2: client sweep locating the maximum-throughput point (§5.2).
use throttledb_bench::experiment_config;
use throttledb_engine::client_sweep;

fn main() {
    let (cfg, _) = experiment_config(30);
    let rows = client_sweep(&cfg, &[10, 20, 25, 30, 35, 40, 45]);
    println!("== Table T2: client sweep (completions after warm-up) ==");
    println!(
        "{:>8} {:>12} {:>14} {:>12} {:>14}",
        "clients", "throttled", "non-throttled", "fail (thr)", "fail (non)"
    );
    for r in rows {
        println!(
            "{:>8} {:>12} {:>14} {:>12} {:>14}",
            r.clients,
            r.throttled_completed,
            r.unthrottled_completed,
            r.throttled_failures,
            r.unthrottled_failures
        );
    }
}
