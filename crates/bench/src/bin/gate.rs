//! The BENCH regression gate CLI.
//!
//! ```text
//! gate --baseline PATH --current PATH [--tolerance 0.10]
//! gate --self-test
//! ```
//!
//! Diffs a current `BENCH_sweep.json`-cells or `BENCH_policies.json`
//! document against a committed baseline (see `crates/bench/baselines/`)
//! and exits nonzero when any gated metric regresses beyond the relative
//! tolerance. `--self-test` runs the gate against synthetic documents —
//! one identical, one regressed — proving it can both accept and reject
//! before CI trusts its exit code.
//!
//! Exit codes: 0 pass, 1 regression (or failed self-test), 2 usage /
//! unreadable / unparsable input.

use std::process::ExitCode;
use throttledb_bench::gate;

fn usage() -> ExitCode {
    eprintln!("usage: gate --baseline PATH --current PATH [--tolerance 0.10]");
    eprintln!("       gate --self-test");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = 0.10f64;
    let mut self_test = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => match iter.next() {
                Some(path) => baseline = Some(path.clone()),
                None => return usage(),
            },
            "--current" => match iter.next() {
                Some(path) => current = Some(path.clone()),
                None => return usage(),
            },
            "--tolerance" => match iter.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => return usage(),
            },
            "--self-test" => self_test = true,
            _ => return usage(),
        }
    }

    if self_test {
        return match gate::self_test() {
            Ok(()) => {
                println!("gate self-test passed: accepts identical, rejects regressed");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gate self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let (Some(baseline_path), Some(current_path)) = (baseline, current) else {
        return usage();
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            None
        }
    };
    let (Some(base_text), Some(cur_text)) = (read(&baseline_path), read(&current_path)) else {
        return ExitCode::from(2);
    };

    match gate::compare_text(&base_text, &cur_text, tolerance) {
        Ok(regressions) if regressions.is_empty() => {
            println!(
                "gate passed: {current_path} within ±{:.0}% of {baseline_path}",
                tolerance * 100.0
            );
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            eprintln!(
                "gate FAILED: {} regression(s) vs {baseline_path}:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  {}", r.what);
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: malformed JSON at byte {}: {}", e.at, e.message);
            ExitCode::from(2)
        }
    }
}
