//! Run a named built-in scenario and print its per-phase report.
//!
//! ```text
//! scenario_runner --list
//! scenario_runner <name> [quick|paper] [seed] [--trace PATH | --replay PATH]
//! ```
//!
//! `--trace PATH` additionally records the admission/grant event stream
//! and writes it to `PATH` (a regression golden file). `--replay PATH`
//! re-runs the scenario, decodes the stored trace, and fails (exit 3) if
//! the stored trace's replay does not reproduce the live run's per-phase
//! reports. Exit codes: 0 success, 1 I/O error, 2 usage/empty-metrics,
//! 3 replay mismatch.
//!
//! See `docs/EXPERIMENTS.md` for the full experiment guide.

use std::process::ExitCode;
use throttledb_scenario::{Scale, Scenario, ScenarioRunner, Trace};

fn usage() -> ExitCode {
    eprintln!("usage: scenario_runner --list");
    eprintln!("       scenario_runner <name> [quick|paper] [seed] [--trace PATH | --replay PATH]");
    eprintln!("built-in scenarios:");
    for name in Scenario::builtin_names() {
        eprintln!("  {name}");
    }
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name = None;
    let mut scale = Scale::Paper;
    let mut seed = None;
    let mut trace_out = None;
    let mut replay_in = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for name in Scenario::builtin_names() {
                    let s = Scenario::builtin(name, Scale::Quick).expect("registry resolves");
                    println!("{name:<22} {}", s.description);
                }
                return ExitCode::SUCCESS;
            }
            "--trace" => match iter.next() {
                Some(path) => trace_out = Some(path.clone()),
                None => return usage(),
            },
            "--replay" => match iter.next() {
                Some(path) => replay_in = Some(path.clone()),
                None => return usage(),
            },
            "quick" | "paper" => scale = Scale::parse(arg).expect("matched above"),
            other if name.is_none() => name = Some(other.to_string()),
            other => match other.parse::<u64>() {
                Ok(s) => seed = Some(s),
                Err(_) => return usage(),
            },
        }
    }

    let Some(name) = name else {
        return usage();
    };
    let Some(mut scenario) = Scenario::builtin(&name, scale) else {
        eprintln!("unknown scenario {name:?}");
        return usage();
    };
    if let Some(seed) = seed {
        scenario = scenario.with_seed(seed);
    }

    // Replay only compares the stored trace against the live per-phase
    // reports, so it needs no recording of its own — but decode the stored
    // file up front, so a truncated or corrupted trace is a clean
    // diagnostic and an immediate nonzero exit, not minutes of simulation
    // followed by one.
    let stored = match &replay_in {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read trace from {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Trace::decode(&text) {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("error: {path} is not a valid trace: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let record = trace_out.is_some();
    eprintln!(
        "running scenario {name} ({} phases, {} clients max, {}s simulated)...",
        scenario.phases.len(),
        scenario.max_clients(),
        scenario.total_duration().as_secs()
    );
    let outcome = ScenarioRunner::new(scenario).record_trace(record).run();
    print!("{}", outcome.render_report());

    if outcome.total_completed() == 0 {
        eprintln!("error: scenario completed zero queries (empty metrics)");
        return ExitCode::from(2);
    }

    if let Some(path) = trace_out {
        let trace = outcome.trace.as_ref().expect("recording was enabled");
        if let Err(e) = std::fs::write(&path, trace.encode()) {
            eprintln!("error: cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "trace: {} events, digest {:016x}, written to {path}",
            trace.len(),
            trace.digest()
        );
    }

    if let (Some(path), Some(stored)) = (replay_in, stored) {
        if stored.replay() == outcome.phases {
            println!(
                "replay: {path} reproduces the live run ({} phases match)",
                outcome.phases.len()
            );
        } else {
            eprintln!("replay MISMATCH: stored trace {path} does not reproduce this run");
            eprintln!("(did the policy code, scenario definition, or seed change?)");
            return ExitCode::from(3);
        }
    }

    ExitCode::SUCCESS
}
