//! Run a named built-in scenario and print its per-phase report.
//!
//! ```text
//! scenario_runner --list
//! scenario_runner --transcode SRC DST
//! scenario_runner <name> [quick|paper] [seed]
//!                 [--trace PATH | --trace-v2 PATH | --replay PATH]
//! ```
//!
//! `--trace PATH` records the admission/grant event stream to the v1 text
//! format (the diffable golden-file codec). `--trace-v2 PATH` records the
//! same stream to the binary `throttledb-trace v2` frame format through a
//! streaming sink, so even a 10M-arrival run serializes at O(1) memory.
//! `--replay PATH` re-runs the scenario, streams the stored trace (either
//! version, sniffed from the first bytes), and fails (exit 3) if the
//! stored trace does not reproduce the live run — v1 compares per-phase
//! reports, v2 additionally compares the incremental stream digest.
//! `--transcode SRC DST` converts between the two formats losslessly
//! (direction sniffed from SRC). Exit codes: 0 success, 1 I/O/decode
//! error, 2 usage/empty-metrics, 3 replay mismatch.
//!
//! See `docs/EXPERIMENTS.md` for the full experiment guide.

use std::cell::RefCell;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read};
use std::process::ExitCode;
use std::rc::Rc;
use throttledb_engine::TraceSink;
use throttledb_scenario::{
    is_v2, replay_v2, transcode_v1_to_v2, transcode_v2_to_v1, Scale, Scenario, ScenarioRunner,
    Trace, TraceV2Error, TraceWriterV2, V2ReplaySummary,
};

fn usage() -> ExitCode {
    eprintln!("usage: scenario_runner --list");
    eprintln!("       scenario_runner --transcode SRC DST");
    eprintln!("       scenario_runner <name> [quick|paper] [seed]");
    eprintln!("                       [--trace PATH | --trace-v2 PATH | --replay PATH]");
    eprintln!("built-in scenarios:");
    for name in Scenario::builtin_names() {
        eprintln!("  {name}");
    }
    ExitCode::from(2)
}

/// Sniff whether `path` holds a v2 binary trace (vs v1 text or anything
/// else) from its first bytes, without reading the whole file.
fn sniff_v2(path: &str) -> Result<bool, std::io::Error> {
    let mut prefix = [0u8; 20];
    let mut file = File::open(path)?;
    let mut filled = 0;
    while filled < prefix.len() {
        match file.read(&mut prefix[filled..])? {
            0 => break,
            n => filled += n,
        }
    }
    Ok(is_v2(&prefix[..filled]))
}

/// Convert between trace formats, direction sniffed from `src`. The v1
/// side streams line by line, the v2 side frame by frame, so transcoding
/// never materializes either trace.
fn transcode(src: &str, dst: &str) -> ExitCode {
    let v2 = match sniff_v2(src) {
        Ok(v2) => v2,
        Err(e) => {
            eprintln!("error: cannot read trace from {src}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let input = match File::open(src) {
        Ok(f) => BufReader::new(f),
        Err(e) => {
            eprintln!("error: cannot read trace from {src}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let output = match File::create(dst) {
        Ok(f) => BufWriter::new(f),
        Err(e) => {
            eprintln!("error: cannot write trace to {dst}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if v2 {
        match transcode_v2_to_v1(input, output) {
            Ok(events) => {
                println!("transcoded {src} (v2) -> {dst} (v1): {events} events");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {src} is not a valid trace: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match transcode_v1_to_v2(input, output) {
            Ok(summary) => {
                println!(
                    "transcoded {src} (v1) -> {dst} (v2): {} events, {} bytes, digest {:016x}",
                    summary.events, summary.bytes, summary.digest
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {src} is not a valid trace: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

/// A stored `--replay` trace, decoded up front (v1) or streamed to its
/// replay summary (v2) before any simulation runs.
enum StoredTrace {
    V1(Trace),
    V2(V2ReplaySummary),
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name = None;
    let mut scale = Scale::Paper;
    let mut seed = None;
    let mut trace_out = None;
    let mut trace_v2_out = None;
    let mut replay_in = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for name in Scenario::builtin_names() {
                    let s = Scenario::builtin(name, Scale::Quick).expect("registry resolves");
                    println!("{name:<22} {}", s.description);
                }
                return ExitCode::SUCCESS;
            }
            "--transcode" => match (iter.next(), iter.next()) {
                (Some(src), Some(dst)) => return transcode(src, dst),
                _ => return usage(),
            },
            "--trace" => match iter.next() {
                Some(path) => trace_out = Some(path.clone()),
                None => return usage(),
            },
            "--trace-v2" => match iter.next() {
                Some(path) => trace_v2_out = Some(path.clone()),
                None => return usage(),
            },
            "--replay" => match iter.next() {
                Some(path) => replay_in = Some(path.clone()),
                None => return usage(),
            },
            "quick" | "paper" => scale = Scale::parse(arg).expect("matched above"),
            other if name.is_none() => name = Some(other.to_string()),
            other => match other.parse::<u64>() {
                Ok(s) => seed = Some(s),
                Err(_) => return usage(),
            },
        }
    }

    let Some(name) = name else {
        return usage();
    };
    let Some(mut scenario) = Scenario::builtin(&name, scale) else {
        eprintln!("unknown scenario {name:?}");
        return usage();
    };
    if let Some(seed) = seed {
        scenario = scenario.with_seed(seed);
    }
    let config_digest = scenario.config_digest();
    let catalog = scenario.trace_catalog();

    // Replay only compares the stored trace against the live per-phase
    // reports, so it needs no recording of its own — but decode the stored
    // file up front, so a truncated or corrupted trace is a clean
    // diagnostic and an immediate nonzero exit, not minutes of simulation
    // followed by one. v2 traces stream through the replay fold at O(1)
    // memory and carry a run-config digest checked here, before any
    // simulation, so a trace recorded under a different scenario, seed, or
    // policy fails fast too.
    let stored = match &replay_in {
        Some(path) => match sniff_v2(path) {
            Err(e) => {
                eprintln!("error: cannot read trace from {path}: {e}");
                return ExitCode::FAILURE;
            }
            Ok(true) => {
                let file = match File::open(path) {
                    Ok(f) => BufReader::new(f),
                    Err(e) => {
                        eprintln!("error: cannot read trace from {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let summary = match replay_v2(file) {
                    Ok(s) => s,
                    Err(TraceV2Error::Io(msg)) => {
                        eprintln!("error: cannot read trace from {path}: {msg}");
                        return ExitCode::FAILURE;
                    }
                    Err(e) => {
                        eprintln!("error: {path} is not a valid trace: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                // Config digest 0 marks a transcoded stream (the v1 text
                // carries no scenario identity to check against).
                if summary.config_digest != 0 && summary.config_digest != config_digest {
                    eprintln!(
                        "error: {path} was recorded under a different configuration: \
                         stored config digest {:016x}, this run is {:016x} \
                         (scenario, seed, policy, or phase schedule changed?)",
                        summary.config_digest, config_digest
                    );
                    return ExitCode::FAILURE;
                }
                Some(StoredTrace::V2(summary))
            }
            Ok(false) => {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: cannot read trace from {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match Trace::decode(&text) {
                    Ok(t) => Some(StoredTrace::V1(t)),
                    Err(e) => {
                        eprintln!("error: {path} is not a valid trace: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        },
        None => None,
    };

    let record = trace_out.is_some();
    // The v2 recording path is a streaming sink: events serialize to the
    // file as the run produces them. Replaying a v2 trace (recorded with a
    // config digest) installs the same writer over a null output, so the
    // live run's stream digest is recomputed byte-for-byte without ever
    // buffering the event stream.
    let need_live_digest = matches!(
        &stored,
        Some(StoredTrace::V2(s)) if s.config_digest != 0
    ) && trace_v2_out.is_none();
    let v2_file_writer = match &trace_v2_out {
        Some(path) => {
            let file = match File::create(path) {
                Ok(f) => BufWriter::new(f),
                Err(e) => {
                    eprintln!("error: cannot write trace to {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match TraceWriterV2::new(file, &catalog, config_digest) {
                Ok(w) => Some(Rc::new(RefCell::new(w))),
                Err(e) => {
                    eprintln!("error: cannot write trace to {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let v2_null_writer = if need_live_digest {
        match TraceWriterV2::new(std::io::sink(), &catalog, config_digest) {
            Ok(w) => Some(Rc::new(RefCell::new(w))),
            Err(_) => unreachable!("writing to io::sink() cannot fail"),
        }
    } else {
        None
    };

    eprintln!(
        "running scenario {name} ({} phases, {} clients max, {}s simulated)...",
        scenario.phases.len(),
        scenario.max_clients(),
        scenario.total_duration().as_secs()
    );
    let mut runner = ScenarioRunner::new(scenario).record_trace(record);
    if let Some(writer) = &v2_file_writer {
        runner = runner.with_trace_sink(writer.clone() as Rc<RefCell<dyn TraceSink>>);
    } else if let Some(writer) = &v2_null_writer {
        runner = runner.with_trace_sink(writer.clone() as Rc<RefCell<dyn TraceSink>>);
    }
    let outcome = runner.run();
    print!("{}", outcome.render_report());

    if outcome.total_completed() == 0 {
        eprintln!("error: scenario completed zero queries (empty metrics)");
        return ExitCode::from(2);
    }

    if let Some(path) = trace_out {
        let trace = outcome.trace.as_ref().expect("recording was enabled");
        if let Err(e) = std::fs::write(&path, trace.encode()) {
            eprintln!("error: cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "trace: {} events, digest {:016x}, written to {path}",
            trace.len(),
            trace.digest()
        );
    }

    // Close the v2 stream(s): the file writer surfaces any I/O error
    // stashed during the run; the null writer yields the live digest.
    let mut live_digest = None;
    if let Some(writer) = v2_file_writer {
        let path = trace_v2_out.as_deref().expect("path set with writer");
        match writer.borrow_mut().finish() {
            Ok(summary) => {
                live_digest = Some(summary.digest);
                println!(
                    "trace-v2: {} events, {} bytes, digest {:016x}, written to {path}",
                    summary.events, summary.bytes, summary.digest
                );
            }
            Err(e) => {
                eprintln!("error: cannot write trace to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(writer) = v2_null_writer {
        let summary = writer
            .borrow_mut()
            .finish()
            .expect("writing to io::sink() cannot fail");
        live_digest = Some(summary.digest);
    }

    if let (Some(path), Some(stored)) = (replay_in, stored) {
        let matched = match &stored {
            StoredTrace::V1(trace) => trace.replay() == outcome.phases,
            StoredTrace::V2(summary) => {
                let digest_ok = match (summary.config_digest, live_digest) {
                    // Same run identity: the stream must be byte-identical,
                    // and the incremental digest proves it.
                    (stored_config, Some(live)) if stored_config != 0 => live == summary.digest,
                    _ => true,
                };
                digest_ok && summary.reports == outcome.phases
            }
        };
        if matched {
            println!(
                "replay: {path} reproduces the live run ({} phases match)",
                outcome.phases.len()
            );
        } else {
            eprintln!("replay MISMATCH: stored trace {path} does not reproduce this run");
            eprintln!("(did the policy code, scenario definition, or seed change?)");
            return ExitCode::from(3);
        }
    }

    ExitCode::SUCCESS
}
