//! Fan a (scenario × seed) sweep across worker threads, deterministically.
//!
//! ```text
//! sweep [--scenarios a,b,...] [--seeds 1,2,...] [--scale quick|paper]
//!       [--workers N] [--shards N] [--out PATH] [--cells-out PATH]
//!       [--policies ladder,pid,cost] [--policies-out PATH]
//!       [--shard-scale-out PATH]
//! sweep --list
//! ```
//!
//! Cell results depend only on (scenario, seed, scale): `--workers` and
//! `--shards` change wall-clock time and nothing else, which CI enforces by
//! diffing the `--cells-out` file between `--workers 4` and `--workers 1`
//! runs and between `--shards 4` and `--shards 1` runs. `--out` writes the
//! full `BENCH_sweep.json` (cells + wall-clock timing + sweep metadata);
//! see `docs/EXPERIMENTS.md` for the schema.
//!
//! `--shard-scale-out` switches on the shard-scaling benchmark: every
//! (scenario, seed) runs sequentially at 1 shard and at `--shards` (default
//! 4) generator shards, and the path receives `BENCH_shard_scale.json` —
//! the shard-count-invariant cells plus per-scenario `shard_speedup`
//! aggregates the regression gate holds to within tolerance.
//!
//! `--policies` switches on the admission-policy laboratory: instead of the
//! plain (scenario × seed) sweep, the full (policy × scenario × seed) grid
//! runs and `--policies-out` receives the `BENCH_policies.json` scoreboard
//! (per-cell metrics plus per-(policy, scenario) mean ± 95% CI aggregates
//! over seeds; fully deterministic, diffable across worker counts).
//!
//! `--faults` switches on the resilience laboratory: the chaos scenarios
//! (default: every fault-injection built-in) run across the policy grid,
//! and `--resilience-out` receives the `BENCH_resilience.json` scoreboard
//! (goodput under fault, time to recovery, shed/abandon counters, with the
//! same mean ± 95% CI aggregation and worker-count invariance).
//!
//! Exit codes: 0 success, 1 I/O error, 2 usage error.

use std::process::ExitCode;
use throttledb_bench::sweep::{
    run_policy_sweep, run_resilience_sweep, run_shard_scale, run_sweep, PolicySweepSpec,
    ShardScaleSpec, SweepSpec,
};
use throttledb_engine::PolicyKind;
use throttledb_scenario::{Scale, Scenario};

fn usage() -> ExitCode {
    eprintln!("usage: sweep [--scenarios a,b,...] [--seeds 1,2,...] [--scale quick|paper]");
    eprintln!("             [--workers N] [--shards N] [--out PATH] [--cells-out PATH]");
    eprintln!("             [--policies ladder,pid,cost] [--policies-out PATH]");
    eprintln!("             [--faults] [--resilience-out PATH]");
    eprintln!("             [--shard-scale-out PATH]");
    eprintln!("       sweep --list");
    eprintln!("defaults: --scenarios compile_storm --seeds 2007 --scale quick");
    eprintln!("          --workers <available parallelism> --shards 1");
    eprintln!("          --faults alone sweeps every chaos scenario across all policies");
    eprintln!("          --shard-scale-out measures 1 shard vs --shards (default 4)");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenarios = vec!["compile_storm".to_string()];
    let mut seeds = vec![2007u64];
    let mut scale = Scale::Quick;
    let mut workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut shards = 1u32;
    let mut out = None;
    let mut cells_out = None;
    let mut shard_scale_out = None;
    let mut policies: Option<Vec<PolicyKind>> = None;
    let mut policies_out = None;
    let mut faults = false;
    let mut resilience_out = None;
    let mut scenarios_set = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for name in Scenario::builtin_names() {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--scenarios" => match iter.next() {
                Some(list) => {
                    scenarios = list.split(',').map(str::to_string).collect();
                    scenarios_set = true;
                }
                None => return usage(),
            },
            "--seeds" => match iter.next().map(|list| {
                list.split(',')
                    .map(|s| s.trim().parse::<u64>())
                    .collect::<Result<Vec<u64>, _>>()
            }) {
                Some(Ok(parsed)) if !parsed.is_empty() => seeds = parsed,
                _ => return usage(),
            },
            "--scale" => match iter.next().and_then(|s| Scale::parse(s)) {
                Some(s) => scale = s,
                None => return usage(),
            },
            "--workers" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => return usage(),
            },
            "--shards" => match iter.next().and_then(|s| s.parse::<u32>().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => return usage(),
            },
            "--shard-scale-out" => match iter.next() {
                Some(path) => shard_scale_out = Some(path.clone()),
                None => return usage(),
            },
            "--out" => match iter.next() {
                Some(path) => out = Some(path.clone()),
                None => return usage(),
            },
            "--cells-out" => match iter.next() {
                Some(path) => cells_out = Some(path.clone()),
                None => return usage(),
            },
            "--policies" => match iter.next().map(|list| {
                list.split(',')
                    .map(|p| PolicyKind::parse(p.trim()).ok_or(p))
                    .collect::<Result<Vec<_>, _>>()
            }) {
                Some(Ok(parsed)) if !parsed.is_empty() => policies = Some(parsed),
                Some(Err(bad)) => {
                    eprintln!("unknown policy {bad:?} (known: ladder, pid, cost)");
                    return usage();
                }
                _ => return usage(),
            },
            "--policies-out" => match iter.next() {
                Some(path) => policies_out = Some(path.clone()),
                None => return usage(),
            },
            "--faults" => faults = true,
            "--resilience-out" => match iter.next() {
                Some(path) => resilience_out = Some(path.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    if faults && !scenarios_set {
        scenarios = Scenario::chaos_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    for name in &scenarios {
        if Scenario::builtin(name, scale).is_none() {
            eprintln!("unknown scenario {name:?} (try --list)");
            return usage();
        }
    }

    if let Some(path) = shard_scale_out {
        let top = if shards > 1 { shards } else { 4 };
        let spec = ShardScaleSpec {
            scenarios,
            seeds,
            scale,
            shard_counts: vec![1, top],
            workers,
        };
        eprintln!(
            "shard scaling: {} scenario(s) x {} seed(s) at 1 and {} shard(s), one cell at a time...",
            spec.scenarios.len(),
            spec.seeds.len(),
            top
        );
        let outcome = run_shard_scale(&spec);
        println!(
            "{:<22} {:>6} {:>7} {:>12} {:>9} {:>12}",
            "scenario", "seed", "shards", "events", "wall-ms", "events/s"
        );
        for c in &outcome.cells {
            println!(
                "{:<22} {:>6} {:>7} {:>12} {:>9.0} {:>12.0}",
                c.cell.scenario,
                c.cell.seed,
                c.shards,
                c.cell.events_dispatched,
                c.timing.wall_ms,
                c.timing.events_per_sec
            );
        }
        for s in &outcome.speedups {
            println!(
                "speedup: {} at {} shards = {:.2}x",
                s.scenario, s.shards, s.shard_speedup
            );
        }
        println!(
            "total: {} cells in {:.0} ms",
            outcome.cells.len(),
            outcome.total_wall_ms
        );
        if let Err(e) = std::fs::write(&path, outcome.shard_scale_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("shard-scaling results written to {path}");
        return ExitCode::SUCCESS;
    }

    if faults {
        let spec = PolicySweepSpec {
            policies: policies.unwrap_or_else(|| PolicyKind::all().to_vec()),
            scenarios,
            seeds,
            scale,
            workers,
        };
        eprintln!(
            "resilience grid: {} policy(ies) x {} chaos scenario(s) x {} seed(s) on {} worker(s)...",
            spec.policies.len(),
            spec.scenarios.len(),
            spec.seeds.len(),
            spec.workers
        );
        let outcome = run_resilience_sweep(&spec);
        println!(
            "{:<8} {:<26} {:>6} {:>6} {:>5} {:>5} {:>6} {:>10} {:>11}",
            "policy",
            "scenario",
            "seed",
            "done",
            "fail",
            "shed",
            "aband",
            "goodput/s",
            "recovery-s"
        );
        for cell in &outcome.cells {
            println!(
                "{:<8} {:<26} {:>6} {:>6} {:>5} {:>5} {:>6} {:>10.4} {:>11.0}",
                cell.policy,
                cell.scenario,
                cell.seed,
                cell.completed,
                cell.failed,
                cell.shed,
                cell.retries_abandoned,
                cell.goodput_under_fault,
                cell.time_to_recovery_s,
            );
        }
        println!(
            "total: {} cells in {:.0} ms on {} worker(s)",
            outcome.cells.len(),
            outcome.total_wall_ms,
            outcome.workers
        );
        if let Some(path) = resilience_out {
            if let Err(e) = std::fs::write(&path, outcome.resilience_json()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("resilience scoreboard written to {path}");
        }
        return ExitCode::SUCCESS;
    }

    if let Some(policies) = policies {
        let spec = PolicySweepSpec {
            policies,
            scenarios,
            seeds,
            scale,
            workers,
        };
        eprintln!(
            "policy grid: {} policy(ies) x {} scenario(s) x {} seed(s) on {} worker(s)...",
            spec.policies.len(),
            spec.scenarios.len(),
            spec.seeds.len(),
            spec.workers
        );
        let outcome = run_policy_sweep(&spec);
        println!(
            "{:<8} {:<22} {:>6} {:>7} {:>7} {:>6} {:>12} {:>12}",
            "policy", "scenario", "seed", "subm", "done", "fail", "p99-wait-us", "tput/slice"
        );
        for cell in &outcome.cells {
            println!(
                "{:<8} {:<22} {:>6} {:>7} {:>7} {:>6} {:>12} {:>12.2}",
                cell.policy,
                cell.scenario,
                cell.seed,
                cell.submitted,
                cell.completed,
                cell.failed,
                cell.p99_wait_us,
                cell.throughput_per_slice,
            );
        }
        println!(
            "total: {} cells in {:.0} ms on {} worker(s)",
            outcome.cells.len(),
            outcome.total_wall_ms,
            outcome.workers
        );
        if let Some(path) = policies_out {
            if let Err(e) = std::fs::write(&path, outcome.policies_json()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("policy scoreboard written to {path}");
        }
        return ExitCode::SUCCESS;
    }

    let spec = SweepSpec {
        scenarios,
        seeds,
        scale,
        workers,
        shards,
    };
    eprintln!(
        "sweeping {} scenario(s) x {} seed(s) on {} worker(s), {} shard(s) per cell...",
        spec.scenarios.len(),
        spec.seeds.len(),
        spec.workers,
        spec.shards
    );
    let outcome = run_sweep(&spec);

    println!(
        "{:<22} {:>6} {:>7} {:>7} {:>6} {:>12} {:>10} {:>9} {:>12}",
        "scenario", "seed", "subm", "done", "fail", "events", "peak-q", "wall-ms", "events/s"
    );
    for (cell, timing) in outcome.cells.iter().zip(outcome.timings.iter()) {
        println!(
            "{:<22} {:>6} {:>7} {:>7} {:>6} {:>12} {:>10} {:>9.0} {:>12.0}",
            cell.scenario,
            cell.seed,
            cell.submitted,
            cell.completed,
            cell.failed,
            cell.events_dispatched,
            cell.peak_queue_depth,
            timing.wall_ms,
            timing.events_per_sec
        );
    }
    println!(
        "total: {} cells in {:.0} ms on {} worker(s)",
        outcome.cells.len(),
        outcome.total_wall_ms,
        outcome.workers
    );

    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, outcome.full_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("full results written to {path}");
    }
    if let Some(path) = cells_out {
        if let Err(e) = std::fs::write(&path, outcome.cells_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("deterministic cells written to {path}");
    }
    ExitCode::SUCCESS
}
