//! Figure 4: throughput at 35 clients, throttled vs non-throttled.
use throttledb_bench::experiment_config;
use throttledb_engine::throughput_experiment;

fn main() {
    let (cfg, _) = experiment_config(35);
    let cmp = throughput_experiment(&cfg, 35);
    cmp.print("Figure 4");
}
