//! Figure 3: throughput at 30 clients, throttled vs non-throttled.
use throttledb_bench::experiment_config;
use throttledb_engine::throughput_experiment;

fn main() {
    let (cfg, _) = experiment_config(30);
    let cmp = throughput_experiment(&cfg, 30);
    cmp.print("Figure 3");
}
