//! Figure 2: compilation-throttling example (per-query compile-memory timelines).
use throttledb_engine::figure2_timeline;

fn main() {
    println!("== Figure 2: Compilation Throttling Example ==");
    println!("(memory in MB; flat spans are gateway waits)");
    let timelines = figure2_timeline();
    println!("{:>8} {:>10} {:>10} {:>10}", "t (s)", "Q1", "Q2", "Q3");
    for second in (0..240).step_by(5) {
        let t = throttledb_sim::SimTime::from_secs(second);
        let v: Vec<String> = timelines
            .iter()
            .map(|(_, g)| {
                g.value_at(t)
                    .map(|b| format!("{:.0}", b as f64 / 1e6))
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        println!("{:>8} {:>10} {:>10} {:>10}", second, v[0], v[1], v[2]);
    }
    for (name, g) in &timelines {
        println!(
            "{name}: peak {:.0} MB, longest blocked span {}",
            g.max_value() as f64 / 1e6,
            g.longest_plateau()
        );
    }
}
