//! Table T1: SALES vs TPC-H workload characteristics (compile memory, compile
//! time, joins) — the §5.1 claims.
use throttledb_catalog::{sales_schema, tpch_schema, SalesScale};
use throttledb_engine::{ServerConfig, WorkloadProfiles};
use throttledb_sqlparse::parse;
use throttledb_workload::{oltp_templates, sales_templates, tpch_like_templates};

fn main() {
    let cfg = ServerConfig::paper(30, true);
    println!("== Table T1: workload characteristics ==");
    println!(
        "{:<18} {:>6} {:>16} {:>16} {:>14}",
        "query", "joins", "compile MB", "compile s", "exec grant MB"
    );
    let sales = WorkloadProfiles::characterize_sales(&cfg);
    let mut sales_mem = Vec::new();
    for t in sales_templates() {
        let p = sales.profile(&t.name);
        let joins = parse(&t.sql).unwrap().join_count();
        sales_mem.push(p.peak_compile_bytes as f64);
        println!(
            "{:<18} {:>6} {:>16.1} {:>16.1} {:>14.0}",
            t.name,
            joins,
            p.peak_compile_bytes as f64 / 1e6,
            p.compile_cpu_seconds,
            p.exec_grant_bytes as f64 / 1e6
        );
    }
    let tpch_cat = tpch_schema(30.0);
    let tpch = WorkloadProfiles::characterize(&cfg, &tpch_cat, tpch_like_templates(), vec![]);
    let mut tpch_mem = Vec::new();
    for t in tpch_like_templates() {
        let p = tpch.profile(&t.name);
        let joins = parse(&t.sql).unwrap().join_count();
        tpch_mem.push(p.peak_compile_bytes as f64);
        println!(
            "{:<18} {:>6} {:>16.1} {:>16.1} {:>14.0}",
            t.name,
            joins,
            p.peak_compile_bytes as f64 / 1e6,
            p.compile_cpu_seconds,
            p.exec_grant_bytes as f64 / 1e6
        );
    }
    let oltp_cat = sales_schema(SalesScale::paper());
    let _ = oltp_cat;
    let _ = oltp_templates();
    let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "SALES mean compile memory: {:.0} MB; TPC-H-like mean: {:.1} MB; ratio: {:.0}x",
        avg(&sales_mem) / 1e6,
        avg(&tpch_mem) / 1e6,
        avg(&sales_mem) / avg(&tpch_mem)
    );
}
