//! Ablation A1: monitor count, dynamic thresholds and best-effort plans.
use throttledb_bench::experiment_config;
use throttledb_engine::ablation;

fn main() {
    let (cfg, _) = experiment_config(35);
    let rows = ablation(&cfg, 35);
    println!("== Ablation A1: gateway design choices at 35 clients ==");
    println!(
        "{:<42} {:>10} {:>10} {:>14} {:>12}",
        "configuration", "completed", "failures", "cmpl timeouts", "best-effort"
    );
    for r in rows {
        println!(
            "{:<42} {:>10} {:>10} {:>14} {:>12}",
            r.label, r.completed, r.failures, r.compile_timeouts, r.best_effort
        );
    }
}
