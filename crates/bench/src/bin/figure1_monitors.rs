//! Figure 1: the memory-monitor ladder (thresholds up, concurrency down),
//! plus the observed per-gateway wait-time distributions from a quick
//! overloaded run.
use std::sync::Arc;
use throttledb_core::ThrottleConfig;
use throttledb_engine::{Server, ServerConfig, WorkloadProfiles};

fn main() {
    let cfg = ThrottleConfig::paper_machine();
    println!("== Figure 1: Memory Monitors (8-CPU / 4 GB configuration) ==");
    println!(
        "{:>8} {:>16} {:>22} {:>12}",
        "monitor", "threshold (MB)", "concurrent holders", "timeout (s)"
    );
    println!(
        "{:>8} {:>16} {:>22} {:>12}",
        "exempt",
        format!("<= {}", cfg.exempt_bytes >> 20),
        "unlimited",
        "-"
    );
    for (i, m) in cfg.monitors.iter().enumerate() {
        println!(
            "{:>8} {:>16} {:>22} {:>12}",
            i + 1,
            format!("> {}", m.threshold_bytes >> 20),
            m.concurrency.resolve(cfg.cpus),
            m.timeout.as_secs()
        );
    }

    // Observed wait-time distributions: run an overloaded quick
    // configuration and report each gateway's wait histogram.
    let run_cfg = ServerConfig::quick(24, true);
    println!();
    println!("characterizing the SALES workload through the real optimizer...");
    let profiles = Arc::new(WorkloadProfiles::characterize_sales(&run_cfg));
    let metrics = Server::new(run_cfg, profiles).run();

    println!();
    println!("== per-gateway wait-time histograms (quick scale, 24 clients) ==");
    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "gateway", "waits", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)", "max (ms)"
    );
    for level in 0..metrics.throttle.levels() {
        let s = metrics.throttle.wait_summary(level);
        println!(
            "{:>8} {:>8} {:>12.1} {:>10} {:>10} {:>10} {:>10}",
            level + 1,
            s.count,
            s.mean / 1e3,
            s.p50 / 1_000,
            s.p95 / 1_000,
            s.p99 / 1_000,
            s.max / 1_000
        );
    }
    let grants =
        metrics
            .classes
            .iter()
            .fold(None::<throttledb_sim::Histogram>, |acc, c| match acc {
                None => Some(c.grants.wait_time.clone()),
                Some(mut h) => {
                    h.merge(&c.grants.wait_time);
                    Some(h)
                }
            });
    if let Some(h) = grants {
        let s = h.summary();
        println!(
            "{:>8} {:>8} {:>12.1} {:>10} {:>10} {:>10} {:>10}",
            "grants",
            s.count,
            s.mean / 1e3,
            s.p50 / 1_000,
            s.p95 / 1_000,
            s.p99 / 1_000,
            s.max / 1_000
        );
    }
}
