//! Figure 1: the memory-monitor ladder (thresholds up, concurrency down).
use throttledb_core::ThrottleConfig;

fn main() {
    let cfg = ThrottleConfig::paper_machine();
    println!("== Figure 1: Memory Monitors (8-CPU / 4 GB configuration) ==");
    println!(
        "{:>8} {:>16} {:>22} {:>12}",
        "monitor", "threshold (MB)", "concurrent holders", "timeout (s)"
    );
    println!(
        "{:>8} {:>16} {:>22} {:>12}",
        "exempt",
        format!("<= {}", cfg.exempt_bytes >> 20),
        "unlimited",
        "-"
    );
    for (i, m) in cfg.monitors.iter().enumerate() {
        println!(
            "{:>8} {:>16} {:>22} {:>12}",
            i + 1,
            format!("> {}", m.threshold_bytes >> 20),
            m.concurrency.resolve(cfg.cpus),
            m.timeout.as_secs()
        );
    }
}
