//! Figure 5: throughput at 40 clients, throttled vs non-throttled.
use throttledb_bench::experiment_config;
use throttledb_engine::throughput_experiment;

fn main() {
    let (cfg, _) = experiment_config(40);
    let cmp = throughput_experiment(&cfg, 40);
    cmp.print("Figure 5");
}
