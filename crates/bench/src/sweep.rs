//! The parallel deterministic sweep driver.
//!
//! A sweep runs the cross product of (scenario × seed) at one scale, fanning
//! the cells across OS threads. Two properties make it a harness rather
//! than just a loop:
//!
//! * **Determinism** — a cell's result depends only on its (scenario, seed,
//!   scale) coordinates: every worker characterizes nothing (profiles are
//!   precomputed per scenario and shared), every run is seeded, and results
//!   land in a slot keyed by cell index, so the merged output is
//!   cell-for-cell identical whatever `--workers` is. Wall-clock timings —
//!   the only nondeterministic quantity — are kept in a separate `timing`
//!   section so the deterministic `cells` section can be diffed directly
//!   (CI does exactly that: `--workers 4` vs `--workers 1`).
//! * **Machine-readable output** — [`SweepOutcome::full_json`] emits the
//!   `BENCH_sweep.json` schema documented in `docs/EXPERIMENTS.md`:
//!   per-cell admission counters, simulation events/sec, and the peak
//!   event-queue depth, plus the recorded trace digest as a compact
//!   fingerprint of the run's entire admission history.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use throttledb_engine::WorkloadProfiles;
use throttledb_scenario::{Scale, Scenario, ScenarioRunner};

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Built-in scenario names, in output order.
    pub scenarios: Vec<String>,
    /// Seeds, in output order.
    pub seeds: Vec<u64>,
    /// Scale every cell runs at.
    pub scale: Scale,
    /// Worker threads (clamped to at least 1). Affects wall-clock only.
    pub workers: usize,
}

/// The deterministic result of one (scenario, seed) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCell {
    /// Scenario name.
    pub scenario: String,
    /// RNG seed.
    pub seed: u64,
    /// Queries submitted across all phases.
    pub submitted: u64,
    /// Queries completed.
    pub completed: u64,
    /// Queries failed.
    pub failed: u64,
    /// Best-effort plans produced.
    pub best_effort: u64,
    /// Phases in the scenario.
    pub phases: usize,
    /// Simulation events dispatched by the run's event loop.
    pub events_dispatched: u64,
    /// Peak pending events in the timing-wheel queue.
    pub peak_queue_depth: usize,
    /// FNV-1a digest of the run's recorded admission trace — a fingerprint
    /// of the entire event ordering, so any nondeterminism shows up here
    /// first.
    pub trace_digest: u64,
}

/// The wall-clock measurements of one cell (nondeterministic by nature;
/// reported separately from [`SweepCell`]).
#[derive(Debug, Clone, Copy)]
pub struct SweepTiming {
    /// Cell wall time in milliseconds.
    pub wall_ms: f64,
    /// Simulation events dispatched per wall-clock second.
    pub events_per_sec: f64,
}

/// Everything a sweep produced.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The sweep's scale.
    pub scale: Scale,
    /// Worker threads used.
    pub workers: usize,
    /// Deterministic cell results, ordered by (scenario index, seed index).
    pub cells: Vec<SweepCell>,
    /// Per-cell wall-clock measurements, parallel to `cells`.
    pub timings: Vec<SweepTiming>,
    /// End-to-end sweep wall time in milliseconds.
    pub total_wall_ms: f64,
}

/// Run the sweep. Panics on an unknown scenario name (the CLI validates
/// names up front).
pub fn run_sweep(spec: &SweepSpec) -> SweepOutcome {
    let started = Instant::now();
    let workers = spec.workers.max(1);

    // Characterize each scenario's workload once, up front, exactly as the
    // scenario runner would: workers then share the profile tables, so no
    // cell's result can depend on which thread ran it. Characterization
    // (real optimizer compilations) dominates a quick sweep's wall-clock,
    // so the independent per-scenario characterizations fan out across the
    // worker budget too — results are deterministic per config, so this
    // changes nothing but wall time.
    let mut profiles: Vec<Option<Arc<WorkloadProfiles>>> = vec![None; spec.scenarios.len()];
    {
        let next = AtomicUsize::new(0);
        let slots = Mutex::new(&mut profiles);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(spec.scenarios.len().max(1)) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(name) = spec.scenarios.get(idx) else {
                        break;
                    };
                    let scenario = Scenario::builtin(name, spec.scale)
                        .unwrap_or_else(|| panic!("unknown scenario {name:?}"));
                    let config = scenario.runtime_config();
                    let characterized = Arc::new(WorkloadProfiles::characterize_full(&config));
                    slots.lock().expect("no poisoned workers")[idx] = Some(characterized);
                });
            }
        });
    }
    let profiles: Vec<Arc<WorkloadProfiles>> = profiles
        .into_iter()
        .map(|p| p.expect("every scenario characterized"))
        .collect();

    // Cell coordinates in deterministic output order.
    let coords: Vec<(usize, u64)> = spec
        .scenarios
        .iter()
        .enumerate()
        .flat_map(|(si, _)| spec.seeds.iter().map(move |&seed| (si, seed)))
        .collect();

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<(SweepCell, SweepTiming)>>> =
        Mutex::new(vec![None; coords.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers.min(coords.len().max(1)) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(scenario_idx, seed)) = coords.get(idx) else {
                    break;
                };
                let name = &spec.scenarios[scenario_idx];
                let cell_started = Instant::now();
                let scenario = Scenario::builtin(name, spec.scale)
                    .expect("validated above")
                    .with_seed(seed);
                let outcome = ScenarioRunner::new(scenario)
                    .record_trace(true)
                    .with_profiles(profiles[scenario_idx].clone())
                    .run();
                let wall_ms = cell_started.elapsed().as_secs_f64() * 1e3;
                let metrics = &outcome.metrics;
                let cell = SweepCell {
                    scenario: name.clone(),
                    seed,
                    submitted: outcome.phases.iter().map(|p| p.submitted).sum(),
                    completed: metrics.completed.total(),
                    failed: metrics.failed.total(),
                    best_effort: metrics.best_effort_plans,
                    phases: outcome.phases.len(),
                    events_dispatched: metrics.events_dispatched,
                    peak_queue_depth: metrics.peak_queue_depth,
                    trace_digest: outcome.trace.as_ref().expect("recording enabled").digest(),
                };
                let timing = SweepTiming {
                    wall_ms,
                    events_per_sec: metrics.events_dispatched as f64 / (wall_ms / 1e3).max(1e-9),
                };
                results.lock().expect("no poisoned workers")[idx] = Some((cell, timing));
            });
        }
    });

    let mut cells = Vec::with_capacity(coords.len());
    let mut timings = Vec::with_capacity(coords.len());
    for slot in results.into_inner().expect("workers joined") {
        let (cell, timing) = slot.expect("every cell ran");
        cells.push(cell);
        timings.push(timing);
    }
    SweepOutcome {
        scale: spec.scale,
        workers,
        cells,
        timings,
        total_wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

fn scale_str(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Paper => "paper",
    }
}

/// Minimal JSON string escaping (scenario names are identifiers, but stay
/// correct for arbitrary input).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize one cell object; both JSON documents go through here so the
/// CI-diffed `--cells-out` file can never drift from the `cells` section of
/// `BENCH_sweep.json` (which only appends the wall-clock fields).
fn write_cell(out: &mut String, c: &SweepCell, timing: Option<&SweepTiming>, last: bool) {
    let _ = write!(
        out,
        "    {{\"scenario\": \"{}\", \"seed\": {}, \"submitted\": {}, \
         \"completed\": {}, \"failed\": {}, \"best_effort\": {}, \"phases\": {}, \
         \"events_dispatched\": {}, \"peak_queue_depth\": {}, \
         \"trace_digest\": \"{:016x}\"",
        json_escape(&c.scenario),
        c.seed,
        c.submitted,
        c.completed,
        c.failed,
        c.best_effort,
        c.phases,
        c.events_dispatched,
        c.peak_queue_depth,
        c.trace_digest,
    );
    if let Some(t) = timing {
        let _ = write!(
            out,
            ", \"wall_ms\": {:.1}, \"events_per_sec\": {:.0}",
            t.wall_ms, t.events_per_sec
        );
    }
    let _ = writeln!(out, "}}{}", if last { "" } else { "," });
}

impl SweepOutcome {
    /// The deterministic portion only: a `cells` array whose bytes are
    /// identical for any worker count. CI diffs this between `--workers 4`
    /// and `--workers 1`.
    pub fn cells_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"scale\": \"");
        out.push_str(scale_str(self.scale));
        out.push_str("\",\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            write_cell(&mut out, c, None, i + 1 == self.cells.len());
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The full `BENCH_sweep.json` document: sweep metadata and wall-clock
    /// timing alongside the deterministic cells.
    pub fn full_json(&self) -> String {
        let total_events: u64 = self.cells.iter().map(|c| c.events_dispatched).sum();
        let events_per_sec = total_events as f64 / (self.total_wall_ms / 1e3).max(1e-9);
        let mut out = String::new();
        out.push_str("{\n  \"benchmark\": \"sweep\",\n");
        let _ = write!(
            out,
            "  \"scale\": \"{}\",\n  \"workers\": {},\n  \"total_wall_ms\": {:.1},\n  \
             \"total_events_dispatched\": {},\n  \"events_per_sec\": {:.0},\n",
            scale_str(self.scale),
            self.workers,
            self.total_wall_ms,
            total_events,
            events_per_sec,
        );
        out.push_str("  \"cells\": [\n");
        for (i, (c, t)) in self.cells.iter().zip(self.timings.iter()).enumerate() {
            write_cell(&mut out, c, Some(t), i + 1 == self.cells.len());
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(workers: usize) -> SweepSpec {
        SweepSpec {
            scenarios: vec!["compile_storm".to_string()],
            seeds: vec![2007, 2008],
            scale: Scale::Quick,
            workers,
        }
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree_cell_for_cell() {
        let sequential = run_sweep(&tiny_spec(1));
        let parallel = run_sweep(&tiny_spec(4));
        assert_eq!(sequential.cells, parallel.cells);
        assert_eq!(sequential.cells_json(), parallel.cells_json());
        assert_eq!(sequential.cells.len(), 2);
        for cell in &sequential.cells {
            assert!(
                cell.completed > 0,
                "cell {}/{} idle",
                cell.scenario,
                cell.seed
            );
            assert!(cell.events_dispatched > 0);
            assert!(cell.peak_queue_depth > 0);
        }
        // Different seeds really are different runs.
        assert_ne!(
            sequential.cells[0].trace_digest,
            sequential.cells[1].trace_digest
        );
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
