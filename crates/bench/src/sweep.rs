//! The parallel deterministic sweep driver.
//!
//! A sweep runs the cross product of (scenario × seed) at one scale, fanning
//! the cells across OS threads. Two properties make it a harness rather
//! than just a loop:
//!
//! * **Determinism** — a cell's result depends only on its (scenario, seed,
//!   scale) coordinates: every worker characterizes nothing (profiles are
//!   precomputed per scenario and shared), every run is seeded, and results
//!   land in a slot keyed by cell index, so the merged output is
//!   cell-for-cell identical whatever `--workers` is. Wall-clock timings —
//!   the only nondeterministic quantity — are kept in a separate `timing`
//!   section so the deterministic `cells` section can be diffed directly
//!   (CI does exactly that: `--workers 4` vs `--workers 1`).
//! * **Machine-readable output** — [`SweepOutcome::full_json`] emits the
//!   `BENCH_sweep.json` schema documented in `docs/EXPERIMENTS.md`:
//!   per-cell admission counters, simulation events/sec, and the peak
//!   event-queue depth, plus the recorded trace digest as a compact
//!   fingerprint of the run's entire admission history.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use throttledb_engine::{PolicyKind, WorkloadProfiles};
use throttledb_scenario::{Scale, Scenario, ScenarioRunner};
use throttledb_sim::{Histogram, Running};

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Built-in scenario names, in output order.
    pub scenarios: Vec<String>,
    /// Seeds, in output order.
    pub seeds: Vec<u64>,
    /// Scale every cell runs at.
    pub scale: Scale,
    /// Worker threads (clamped to at least 1). Affects wall-clock only.
    pub workers: usize,
    /// Generator shards per cell (clamped to at least 1). Like `workers`,
    /// affects wall-clock only: the sharded engine's schedule is
    /// byte-identical to the single-threaded one, so every deterministic
    /// cell field is invariant under this knob — CI diffs `--shards 4`
    /// against `--shards 1` to prove it.
    pub shards: u32,
}

/// The deterministic result of one (scenario, seed) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCell {
    /// Scenario name.
    pub scenario: String,
    /// RNG seed.
    pub seed: u64,
    /// Queries submitted across all phases.
    pub submitted: u64,
    /// Queries completed.
    pub completed: u64,
    /// Queries failed.
    pub failed: u64,
    /// Best-effort plans produced.
    pub best_effort: u64,
    /// Phases in the scenario.
    pub phases: usize,
    /// Simulation events dispatched by the run's event loop.
    pub events_dispatched: u64,
    /// Peak pending events in the timing-wheel queue.
    pub peak_queue_depth: usize,
    /// Open-loop arrivals offered across all sources (0 for purely
    /// closed-loop scenarios).
    pub arrivals: u64,
    /// Open-loop arrivals that entered the admission pipeline.
    pub arrivals_admitted: u64,
    /// Open-loop arrivals shed at a source's concurrency cap or by an open
    /// breaker.
    pub arrivals_shed: u64,
    /// Streaming FNV-1a digest over every (time, source, decision) arrival
    /// triple — the open-loop counterpart of `trace_digest`, cheap enough
    /// to fold at tens of millions of arrivals per cell.
    pub arrival_digest: u64,
    /// FNV-1a digest of the run's recorded admission trace — a fingerprint
    /// of the entire event ordering, so any nondeterminism shows up here
    /// first.
    pub trace_digest: u64,
}

/// The wall-clock measurements of one cell (nondeterministic by nature;
/// reported separately from [`SweepCell`]).
#[derive(Debug, Clone, Copy)]
pub struct SweepTiming {
    /// Cell wall time in milliseconds.
    pub wall_ms: f64,
    /// Simulation events dispatched per wall-clock second.
    pub events_per_sec: f64,
}

/// Everything a sweep produced.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The sweep's scale.
    pub scale: Scale,
    /// Worker threads used.
    pub workers: usize,
    /// Deterministic cell results, ordered by (scenario index, seed index).
    pub cells: Vec<SweepCell>,
    /// Per-cell wall-clock measurements, parallel to `cells`.
    pub timings: Vec<SweepTiming>,
    /// End-to-end sweep wall time in milliseconds (characterization,
    /// warm-up and all).
    pub total_wall_ms: f64,
    /// Total wall time of the untimed warm-up cell runs (first coordinate,
    /// results discarded), summed across workers. Each worker thread runs
    /// the warm-up before claiming cells, so every first *timed* cell is
    /// measured against a warm thread, not just a warm process.
    pub warmup_wall_ms: f64,
}

/// Run the sweep. Panics on an unknown scenario name (the CLI validates
/// names up front).
pub fn run_sweep(spec: &SweepSpec) -> SweepOutcome {
    let started = Instant::now();
    let workers = spec.workers.max(1);

    // Characterize each scenario's workload once, up front, exactly as the
    // scenario runner would: workers then share the profile tables, so no
    // cell's result can depend on which thread ran it. Characterization
    // (real optimizer compilations) dominates a quick sweep's wall-clock,
    // so the independent per-scenario characterizations fan out across the
    // worker budget too — results are deterministic per config, so this
    // changes nothing but wall time.
    let profiles = characterize_scenarios(&spec.scenarios, spec.scale, workers);

    // Cell coordinates in deterministic output order.
    let coords: Vec<(usize, u64)> = spec
        .scenarios
        .iter()
        .enumerate()
        .flat_map(|(si, _)| spec.seeds.iter().map(move |&seed| (si, seed)))
        .collect();

    // Warm-up: every worker thread runs the first cell once, untimed and
    // discarded, before claiming any timed cell. A single pre-spawn
    // warm-up only warmed the *process* (lazily-initialized tables) plus
    // the main thread; each spawned worker still paid its own per-thread
    // cold start (allocator arenas, first-touch page faults) on its first
    // timed cell, so with `--workers 4` up to four cells per sweep ran
    // skewed. Results are deterministic per config, so the extra runs move
    // only wall time, never cell values.
    let warmup_micros = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<(SweepCell, SweepTiming)>>> =
        Mutex::new(vec![None; coords.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers.min(coords.len().max(1)) {
            scope.spawn(|| {
                if let Some(&(scenario_idx, seed)) = coords.first() {
                    let warmup_started = Instant::now();
                    let _ = run_cell(
                        &spec.scenarios[scenario_idx],
                        seed,
                        spec.scale,
                        profiles[scenario_idx].clone(),
                        spec.shards,
                    );
                    warmup_micros.fetch_add(
                        warmup_started.elapsed().as_micros() as usize,
                        Ordering::Relaxed,
                    );
                }
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(scenario_idx, seed)) = coords.get(idx) else {
                        break;
                    };
                    let name = &spec.scenarios[scenario_idx];
                    let measured = run_cell(
                        name,
                        seed,
                        spec.scale,
                        profiles[scenario_idx].clone(),
                        spec.shards,
                    );
                    results.lock().expect("no poisoned workers")[idx] = Some(measured);
                }
            });
        }
    });
    let warmup_wall_ms = warmup_micros.load(Ordering::Relaxed) as f64 / 1e3;

    let mut cells = Vec::with_capacity(coords.len());
    let mut timings = Vec::with_capacity(coords.len());
    for slot in results.into_inner().expect("workers joined") {
        let (cell, timing) = slot.expect("every cell ran");
        cells.push(cell);
        timings.push(timing);
    }
    SweepOutcome {
        scale: spec.scale,
        workers,
        cells,
        timings,
        total_wall_ms: started.elapsed().as_secs_f64() * 1e3,
        warmup_wall_ms,
    }
}

fn scale_str(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Paper => "paper",
    }
}

/// Minimal JSON string escaping (scenario names are identifiers, but stay
/// correct for arbitrary input).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize one cell object; all three JSON documents go through here so
/// the CI-diffed `--cells-out` file can never drift from the `cells`
/// section of `BENCH_sweep.json` (which only appends the wall-clock
/// fields) or of `BENCH_shard_scale.json` (which also prepends the shard
/// count the cell ran at).
fn write_cell(
    out: &mut String,
    c: &SweepCell,
    shards: Option<u32>,
    timing: Option<&SweepTiming>,
    last: bool,
) {
    out.push_str("    {");
    if let Some(n) = shards {
        let _ = write!(out, "\"shards\": {n}, ");
    }
    let _ = write!(
        out,
        "\"scenario\": \"{}\", \"seed\": {}, \"submitted\": {}, \
         \"completed\": {}, \"failed\": {}, \"best_effort\": {}, \"phases\": {}, \
         \"events_dispatched\": {}, \"peak_queue_depth\": {}, \
         \"arrivals\": {}, \"arrivals_admitted\": {}, \"arrivals_shed\": {}, \
         \"arrival_digest\": \"{:016x}\", \"trace_digest\": \"{:016x}\"",
        json_escape(&c.scenario),
        c.seed,
        c.submitted,
        c.completed,
        c.failed,
        c.best_effort,
        c.phases,
        c.events_dispatched,
        c.peak_queue_depth,
        c.arrivals,
        c.arrivals_admitted,
        c.arrivals_shed,
        c.arrival_digest,
        c.trace_digest,
    );
    if let Some(t) = timing {
        let _ = write!(
            out,
            ", \"wall_ms\": {:.1}, \"events_per_sec\": {:.0}",
            t.wall_ms, t.events_per_sec
        );
    }
    let _ = writeln!(out, "}}{}", if last { "" } else { "," });
}

impl SweepOutcome {
    /// The deterministic portion only: a `cells` array whose bytes are
    /// identical for any worker count. CI diffs this between `--workers 4`
    /// and `--workers 1`.
    pub fn cells_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"scale\": \"");
        out.push_str(scale_str(self.scale));
        out.push_str("\",\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            write_cell(&mut out, c, None, None, i + 1 == self.cells.len());
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The full `BENCH_sweep.json` document: sweep metadata and wall-clock
    /// timing alongside the deterministic cells.
    ///
    /// The headline `events_per_sec` is the *steady-state* rate: total
    /// events over the sum of per-cell wall times. Characterization and
    /// the warm-up cell are excluded — dividing by end-to-end wall time
    /// (the old behaviour) understated the simulator by ~500x on a quick
    /// sweep, because optimizer characterization dominates its wall clock.
    pub fn full_json(&self) -> String {
        let total_events: u64 = self.cells.iter().map(|c| c.events_dispatched).sum();
        let total_arrivals: u64 = self.cells.iter().map(|c| c.arrivals).sum();
        let steady_wall_ms: f64 = self.timings.iter().map(|t| t.wall_ms).sum();
        let events_per_sec = total_events as f64 / (steady_wall_ms / 1e3).max(1e-9);
        let mut out = String::new();
        out.push_str("{\n  \"benchmark\": \"sweep\",\n");
        let _ = write!(
            out,
            "  \"scale\": \"{}\",\n  \"workers\": {},\n  \"total_wall_ms\": {:.1},\n  \
             \"warmup_wall_ms\": {:.1},\n  \"steady_wall_ms\": {:.1},\n  \
             \"total_events_dispatched\": {},\n  \"total_arrivals\": {},\n  \
             \"events_per_sec\": {:.0},\n",
            scale_str(self.scale),
            self.workers,
            self.total_wall_ms,
            self.warmup_wall_ms,
            steady_wall_ms,
            total_events,
            total_arrivals,
            events_per_sec,
        );
        out.push_str("  \"cells\": [\n");
        for (i, (c, t)) in self.cells.iter().zip(self.timings.iter()).enumerate() {
            write_cell(&mut out, c, None, Some(t), i + 1 == self.cells.len());
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Run and measure one (scenario, seed) cell at `shards` generator shards.
/// The deterministic fields depend only on (scenario, seed, scale) — the
/// shard count, like the worker count, moves wall-clock time and nothing
/// else.
fn run_cell(
    name: &str,
    seed: u64,
    scale: Scale,
    profiles: Arc<WorkloadProfiles>,
    shards: u32,
) -> (SweepCell, SweepTiming) {
    let cell_started = Instant::now();
    let scenario = Scenario::builtin(name, scale)
        .expect("validated by the caller")
        .with_seed(seed);
    let outcome = ScenarioRunner::new(scenario)
        .record_trace(true)
        .with_profiles(profiles)
        .with_shards(shards.max(1))
        .run();
    let wall_ms = cell_started.elapsed().as_secs_f64() * 1e3;
    let metrics = &outcome.metrics;
    let cell = SweepCell {
        scenario: name.to_string(),
        seed,
        submitted: outcome.phases.iter().map(|p| p.submitted).sum(),
        completed: metrics.completed.total(),
        failed: metrics.failed.total(),
        best_effort: metrics.best_effort_plans,
        phases: outcome.phases.len(),
        events_dispatched: metrics.events_dispatched,
        peak_queue_depth: metrics.peak_queue_depth,
        arrivals: metrics.arrivals,
        arrivals_admitted: metrics.arrivals_admitted,
        arrivals_shed: metrics.arrivals_shed,
        arrival_digest: metrics.arrival_digest,
        trace_digest: outcome.trace.as_ref().expect("recording enabled").digest(),
    };
    let timing = SweepTiming {
        wall_ms,
        events_per_sec: metrics.events_dispatched as f64 / (wall_ms / 1e3).max(1e-9),
    };
    (cell, timing)
}

// --- the shard-scaling benchmark -----------------------------------------

/// What the shard-scaling benchmark runs: every (scenario, seed) at every
/// shard count, sequentially (a measured cell gets the whole machine — its
/// generator shards *are* the parallelism under test).
#[derive(Debug, Clone)]
pub struct ShardScaleSpec {
    /// Built-in scenario names, in output order.
    pub scenarios: Vec<String>,
    /// Seeds, in output order.
    pub seeds: Vec<u64>,
    /// Scale every cell runs at.
    pub scale: Scale,
    /// Shard counts to measure, in output order. Must include `1` for the
    /// speedup aggregates to exist (it is the denominator).
    pub shard_counts: Vec<u32>,
    /// Worker threads for the up-front scenario characterization only —
    /// the measured cells themselves always run one at a time.
    pub workers: usize,
}

/// One measured (scenario, seed, shard count) cell.
#[derive(Debug, Clone)]
pub struct ShardScaleCell {
    /// Generator shards the cell ran with.
    pub shards: u32,
    /// The deterministic result — byte-identical across `shards` values,
    /// which [`ShardScaleOutcome::shard_scale_json`] exposes for the gate.
    pub cell: SweepCell,
    /// The cell's wall-clock measurement.
    pub timing: SweepTiming,
}

/// Per-(scenario, shard count) throughput ratio over the same scenario's
/// single-shard runs. A pure ratio of events/sec on the same machine and
/// build, so — unlike the raw rates — it is meaningful to commit as a
/// baseline and gate across machines.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpeedup {
    /// Scenario name.
    pub scenario: String,
    /// Shard count the numerator ran with.
    pub shards: u32,
    /// (events/sec at `shards`) / (events/sec at 1), summed over seeds.
    pub shard_speedup: f64,
}

/// Everything the shard-scaling benchmark produced.
#[derive(Debug, Clone)]
pub struct ShardScaleOutcome {
    /// The benchmark's scale.
    pub scale: Scale,
    /// Measured cells, ordered by (scenario, shard count, seed).
    pub cells: Vec<ShardScaleCell>,
    /// Speedup aggregates for every shard count above 1, scenario-major.
    pub speedups: Vec<ShardSpeedup>,
    /// End-to-end wall time in milliseconds.
    pub total_wall_ms: f64,
}

/// Run the shard-scaling grid. Cells run strictly one at a time so each
/// measurement owns the machine; determinism still holds cell-for-cell
/// (the engine's sharded schedule is byte-identical to the single-threaded
/// one), which the shard-equivalence tests prove and the gate re-checks
/// against the committed `BENCH_shard_scale.json` baseline.
pub fn run_shard_scale(spec: &ShardScaleSpec) -> ShardScaleOutcome {
    let started = Instant::now();
    let profiles = characterize_scenarios(&spec.scenarios, spec.scale, spec.workers.max(1));

    // Warm-up, untimed and discarded, mirroring `run_sweep`: the first
    // measured cell must not absorb allocator/page-fault warm-up, or the
    // first shard count's events/sec (usually the speedup denominator)
    // would be understated.
    if let (Some(name), Some(&shards), Some(&seed)) = (
        spec.scenarios.first(),
        spec.shard_counts.first(),
        spec.seeds.first(),
    ) {
        let _ = run_cell(name, seed, spec.scale, profiles[0].clone(), shards);
    }

    let mut cells = Vec::new();
    for (scenario_idx, name) in spec.scenarios.iter().enumerate() {
        for &shards in &spec.shard_counts {
            for &seed in &spec.seeds {
                let (cell, timing) = run_cell(
                    name,
                    seed,
                    spec.scale,
                    profiles[scenario_idx].clone(),
                    shards,
                );
                cells.push(ShardScaleCell {
                    shards,
                    cell,
                    timing,
                });
            }
        }
    }

    // events/sec per (scenario, shard count), events and wall summed over
    // seeds; the speedup is the ratio against the same scenario at 1.
    let rate = |name: &str, shards: u32| -> f64 {
        let (events, wall_ms) = cells
            .iter()
            .filter(|c| c.shards == shards && c.cell.scenario == name)
            .fold((0u64, 0.0f64), |(e, w), c| {
                (e + c.cell.events_dispatched, w + c.timing.wall_ms)
            });
        events as f64 / (wall_ms / 1e3).max(1e-9)
    };
    let mut speedups = Vec::new();
    if spec.shard_counts.contains(&1) {
        for name in &spec.scenarios {
            let base = rate(name, 1);
            for &shards in &spec.shard_counts {
                if shards == 1 {
                    continue;
                }
                speedups.push(ShardSpeedup {
                    scenario: name.clone(),
                    shards,
                    shard_speedup: rate(name, shards) / base.max(1e-9),
                });
            }
        }
    }

    ShardScaleOutcome {
        scale: spec.scale,
        cells,
        speedups,
        total_wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

impl ShardScaleOutcome {
    /// The `BENCH_shard_scale.json` document: the measured cells (their
    /// deterministic fields are shard-count-invariant — the gate re-checks
    /// them against the baseline) and the `shard_speedup` aggregates the
    /// gate holds to within tolerance.
    pub fn shard_scale_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"benchmark\": \"shard_scale\",\n  \"scale\": \"");
        out.push_str(scale_str(self.scale));
        out.push_str("\",\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            write_cell(
                &mut out,
                &c.cell,
                Some(c.shards),
                Some(&c.timing),
                i + 1 == self.cells.len(),
            );
        }
        out.push_str("  ],\n  \"aggregates\": [\n");
        for (i, s) in self.speedups.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"scenario\": \"{}\", \"shards\": {}, \"shard_speedup\": {:.3}}}",
                json_escape(&s.scenario),
                s.shards,
                s.shard_speedup,
            );
            let _ = writeln!(
                out,
                "{}",
                if i + 1 == self.speedups.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

// --- the admission-policy laboratory ------------------------------------

/// What the policy laboratory sweeps: the full (policy × scenario × seed)
/// grid at one scale.
#[derive(Debug, Clone)]
pub struct PolicySweepSpec {
    /// Admission policies, in output order.
    pub policies: Vec<PolicyKind>,
    /// Built-in scenario names, in output order.
    pub scenarios: Vec<String>,
    /// Seeds, in output order.
    pub seeds: Vec<u64>,
    /// Scale every cell runs at.
    pub scale: Scale,
    /// Worker threads (clamped to at least 1). Affects wall-clock only.
    pub workers: usize,
}

/// The deterministic result of one (policy, scenario, seed) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCell {
    /// Admission policy name.
    pub policy: &'static str,
    /// Scenario name.
    pub scenario: String,
    /// RNG seed.
    pub seed: u64,
    /// Queries submitted across all phases.
    pub submitted: u64,
    /// Queries completed.
    pub completed: u64,
    /// Queries failed.
    pub failed: u64,
    /// Best-effort plans produced.
    pub best_effort: u64,
    /// Grant requests admitted with a reduced allocation, over all classes.
    pub degraded_grants: u64,
    /// Grant requests admitted at all (full + degraded), over all classes.
    pub admitted_grants: u64,
    /// p99 admission wait in microseconds, merged over every policy level.
    pub p99_wait_us: u64,
    /// The paper's sustained-throughput metric (completed per slice after
    /// warm-up).
    pub throughput_per_slice: f64,
}

impl PolicyCell {
    /// failed / submitted (0 when nothing was submitted).
    pub fn failure_rate(&self) -> f64 {
        self.failed as f64 / (self.submitted.max(1)) as f64
    }

    /// degraded / admitted grants (0 when nothing was granted).
    pub fn degrade_rate(&self) -> f64 {
        self.degraded_grants as f64 / (self.admitted_grants.max(1)) as f64
    }
}

/// A mean with its 95% confidence half-width, aggregated over seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Sample mean across seeds.
    pub mean: f64,
    /// 95% confidence half-width (Student-t for small samples).
    pub ci95: f64,
}

fn mean_ci(r: &Running) -> MeanCi {
    MeanCi {
        mean: r.mean(),
        ci95: r.ci95_half_width(),
    }
}

/// Per-(policy, scenario) metrics aggregated over the seed axis.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyAggregate {
    /// Admission policy name.
    pub policy: &'static str,
    /// Scenario name.
    pub scenario: String,
    /// Number of seeds aggregated.
    pub seeds: usize,
    /// Sustained throughput per slice.
    pub throughput_per_slice: MeanCi,
    /// p99 admission wait (µs).
    pub p99_wait_us: MeanCi,
    /// failed / submitted.
    pub failure_rate: MeanCi,
    /// degraded / admitted grants.
    pub degrade_rate: MeanCi,
}

/// Everything the policy laboratory produced.
#[derive(Debug, Clone)]
pub struct PolicySweepOutcome {
    /// The sweep's scale.
    pub scale: Scale,
    /// Worker threads used (wall-clock only; absent from the JSON).
    pub workers: usize,
    /// Deterministic cell results, ordered by (policy, scenario, seed)
    /// index.
    pub cells: Vec<PolicyCell>,
    /// Per-(policy, scenario) aggregates in the same policy-major order.
    pub aggregates: Vec<PolicyAggregate>,
    /// End-to-end wall time in milliseconds (absent from the JSON).
    pub total_wall_ms: f64,
}

/// Run the (policy × scenario × seed) grid. Panics on an unknown scenario
/// name (the CLI validates names up front).
///
/// Like [`run_sweep`], a cell's result depends only on its coordinates:
/// profiles are characterized once per scenario (the workload does not
/// depend on the policy) and shared, every run is seeded, and results land
/// in index-keyed slots — so [`PolicySweepOutcome::policies_json`] is
/// byte-identical whatever `workers` is.
pub fn run_policy_sweep(spec: &PolicySweepSpec) -> PolicySweepOutcome {
    let started = Instant::now();
    let workers = spec.workers.max(1);
    let profiles = characterize_scenarios(&spec.scenarios, spec.scale, workers);

    // Cell coordinates in deterministic output order (policy-major).
    let coords: Vec<(usize, usize, u64)> = spec
        .policies
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| {
            spec.scenarios
                .iter()
                .enumerate()
                .flat_map(move |(si, _)| spec.seeds.iter().map(move |&seed| (pi, si, seed)))
        })
        .collect();

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<PolicyCell>>> = Mutex::new(vec![None; coords.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers.min(coords.len().max(1)) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(policy_idx, scenario_idx, seed)) = coords.get(idx) else {
                    break;
                };
                let policy = spec.policies[policy_idx];
                let name = &spec.scenarios[scenario_idx];
                let scenario = Scenario::builtin(name, spec.scale)
                    .expect("validated above")
                    .with_seed(seed)
                    .with_policy(policy);
                let outcome = ScenarioRunner::new(scenario)
                    .with_profiles(profiles[scenario_idx].clone())
                    .run();
                let metrics = &outcome.metrics;
                let mut wait = Histogram::new("policy-wait-us");
                for h in &metrics.throttle.wait_histograms {
                    wait.merge(h);
                }
                let (degraded, admitted) = metrics.classes.iter().fold((0, 0), |(d, a), c| {
                    (
                        d + c.grants.degraded,
                        a + c.grants.admitted + c.grants.degraded,
                    )
                });
                let cell = PolicyCell {
                    policy: policy.name(),
                    scenario: name.clone(),
                    seed,
                    submitted: outcome.phases.iter().map(|p| p.submitted).sum(),
                    completed: metrics.completed.total(),
                    failed: metrics.failed.total(),
                    best_effort: metrics.best_effort_plans,
                    degraded_grants: degraded,
                    admitted_grants: admitted,
                    p99_wait_us: wait.percentile(99.0),
                    throughput_per_slice: metrics.sustained_throughput_per_slice(),
                };
                results.lock().expect("no poisoned workers")[idx] = Some(cell);
            });
        }
    });

    let cells: Vec<PolicyCell> = results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|slot| slot.expect("every cell ran"))
        .collect();

    // Aggregate each (policy, scenario) over its seed axis. Cells are
    // slot-ordered, so the fold order (and thus the aggregate bytes) is the
    // same for any worker count.
    let mut aggregates = Vec::with_capacity(spec.policies.len() * spec.scenarios.len());
    for policy in &spec.policies {
        for name in &spec.scenarios {
            let mut throughput = Running::new();
            let mut p99 = Running::new();
            let mut failure = Running::new();
            let mut degrade = Running::new();
            for cell in cells
                .iter()
                .filter(|c| c.policy == policy.name() && &c.scenario == name)
            {
                throughput.push(cell.throughput_per_slice);
                p99.push(cell.p99_wait_us as f64);
                failure.push(cell.failure_rate());
                degrade.push(cell.degrade_rate());
            }
            aggregates.push(PolicyAggregate {
                policy: policy.name(),
                scenario: name.clone(),
                seeds: throughput.count() as usize,
                throughput_per_slice: mean_ci(&throughput),
                p99_wait_us: mean_ci(&p99),
                failure_rate: mean_ci(&failure),
                degrade_rate: mean_ci(&degrade),
            });
        }
    }

    PolicySweepOutcome {
        scale: spec.scale,
        workers,
        cells,
        aggregates,
        total_wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

// --- the resilience laboratory -------------------------------------------

/// The deterministic result of one (policy, chaos-scenario, seed) cell of
/// the resilience grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceCell {
    /// Admission policy name.
    pub policy: &'static str,
    /// Chaos scenario name.
    pub scenario: String,
    /// RNG seed.
    pub seed: u64,
    /// Queries completed.
    pub completed: u64,
    /// Queries failed.
    pub failed: u64,
    /// Arrivals shed by open circuit breakers.
    pub shed: u64,
    /// Breaker state transitions over the run.
    pub breaker_transitions: u64,
    /// Small arrivals admitted in brownout while a breaker was open.
    pub brownout_admits: u64,
    /// Retry chains abandoned (budget exhausted or deadline passed).
    pub retries_abandoned: u64,
    /// Total seconds with at least one fault window open.
    pub fault_seconds: f64,
    /// Completions per second while a fault was active.
    pub goodput_under_fault: f64,
    /// Seconds from the last fault clearing until throughput regained 90%
    /// of its pre-fault baseline.
    pub time_to_recovery_s: f64,
    /// The paper's sustained-throughput metric, for cross-reference with
    /// the policy scoreboard.
    pub throughput_per_slice: f64,
}

/// Per-(policy, scenario) resilience metrics aggregated over the seed axis.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceAggregate {
    /// Admission policy name.
    pub policy: &'static str,
    /// Chaos scenario name.
    pub scenario: String,
    /// Number of seeds aggregated.
    pub seeds: usize,
    /// Completions per second under fault.
    pub goodput_under_fault: MeanCi,
    /// Seconds to regain 90% of pre-fault throughput.
    pub time_to_recovery_s: MeanCi,
    /// Breaker sheds per run.
    pub shed: MeanCi,
    /// Abandoned retry chains per run.
    pub retries_abandoned: MeanCi,
    /// Sustained throughput per slice.
    pub throughput_per_slice: MeanCi,
}

/// Everything the resilience laboratory produced.
#[derive(Debug, Clone)]
pub struct ResilienceSweepOutcome {
    /// The sweep's scale.
    pub scale: Scale,
    /// Worker threads used (wall-clock only; absent from the JSON).
    pub workers: usize,
    /// Deterministic cell results, ordered by (policy, scenario, seed)
    /// index.
    pub cells: Vec<ResilienceCell>,
    /// Per-(policy, scenario) aggregates in the same policy-major order.
    pub aggregates: Vec<ResilienceAggregate>,
    /// End-to-end wall time in milliseconds (absent from the JSON).
    pub total_wall_ms: f64,
}

/// Run the (policy × chaos-scenario × seed) resilience grid. The spec is
/// shared with the policy laboratory; scenarios are expected (but not
/// required) to carry fault plans — a fault-free scenario simply reports
/// zero fault seconds and zero recovery time.
///
/// Determinism mirrors [`run_policy_sweep`] exactly: shared per-scenario
/// profiles, seeded runs, index-keyed result slots — so
/// [`ResilienceSweepOutcome::resilience_json`] is byte-identical whatever
/// `workers` is.
pub fn run_resilience_sweep(spec: &PolicySweepSpec) -> ResilienceSweepOutcome {
    let started = Instant::now();
    let workers = spec.workers.max(1);
    let profiles = characterize_scenarios(&spec.scenarios, spec.scale, workers);

    let coords: Vec<(usize, usize, u64)> = spec
        .policies
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| {
            spec.scenarios
                .iter()
                .enumerate()
                .flat_map(move |(si, _)| spec.seeds.iter().map(move |&seed| (pi, si, seed)))
        })
        .collect();

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<ResilienceCell>>> = Mutex::new(vec![None; coords.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers.min(coords.len().max(1)) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(policy_idx, scenario_idx, seed)) = coords.get(idx) else {
                    break;
                };
                let policy = spec.policies[policy_idx];
                let name = &spec.scenarios[scenario_idx];
                let scenario = Scenario::builtin(name, spec.scale)
                    .expect("validated above")
                    .with_seed(seed)
                    .with_policy(policy);
                let outcome = ScenarioRunner::new(scenario)
                    .with_profiles(profiles[scenario_idx].clone())
                    .run();
                let m = &outcome.metrics;
                let cell = ResilienceCell {
                    policy: policy.name(),
                    scenario: name.clone(),
                    seed,
                    completed: m.completed.total(),
                    failed: m.failed.total(),
                    shed: m.shed,
                    breaker_transitions: m.breaker_transitions,
                    brownout_admits: m.brownout_admits,
                    retries_abandoned: m.retries_abandoned,
                    fault_seconds: m.fault_seconds(),
                    goodput_under_fault: m.goodput_under_fault(),
                    time_to_recovery_s: m.time_to_recovery(),
                    throughput_per_slice: m.sustained_throughput_per_slice(),
                };
                results.lock().expect("no poisoned workers")[idx] = Some(cell);
            });
        }
    });

    let cells: Vec<ResilienceCell> = results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|slot| slot.expect("every cell ran"))
        .collect();

    let mut aggregates = Vec::with_capacity(spec.policies.len() * spec.scenarios.len());
    for policy in &spec.policies {
        for name in &spec.scenarios {
            let mut goodput = Running::new();
            let mut recovery = Running::new();
            let mut shed = Running::new();
            let mut abandoned = Running::new();
            let mut throughput = Running::new();
            for cell in cells
                .iter()
                .filter(|c| c.policy == policy.name() && &c.scenario == name)
            {
                goodput.push(cell.goodput_under_fault);
                recovery.push(cell.time_to_recovery_s);
                shed.push(cell.shed as f64);
                abandoned.push(cell.retries_abandoned as f64);
                throughput.push(cell.throughput_per_slice);
            }
            aggregates.push(ResilienceAggregate {
                policy: policy.name(),
                scenario: name.clone(),
                seeds: goodput.count() as usize,
                goodput_under_fault: mean_ci(&goodput),
                time_to_recovery_s: mean_ci(&recovery),
                shed: mean_ci(&shed),
                retries_abandoned: mean_ci(&abandoned),
                throughput_per_slice: mean_ci(&throughput),
            });
        }
    }

    ResilienceSweepOutcome {
        scale: spec.scale,
        workers,
        cells,
        aggregates,
        total_wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

impl ResilienceSweepOutcome {
    /// The `BENCH_resilience.json` scoreboard: the deterministic
    /// (policy × chaos-scenario × seed) grid plus per-(policy, scenario)
    /// mean ± 95% CI aggregates over seeds. No wall-clock data — CI diffs
    /// the whole document between worker counts, like `BENCH_policies.json`.
    pub fn resilience_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"benchmark\": \"resilience\",\n  \"scale\": \"");
        out.push_str(scale_str(self.scale));
        out.push_str("\",\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"policy\": \"{}\", \"scenario\": \"{}\", \"seed\": {}, \
                 \"completed\": {}, \"failed\": {}, \"shed\": {}, \
                 \"breaker_transitions\": {}, \"brownout_admits\": {}, \
                 \"retries_abandoned\": {}, \"fault_seconds\": {:.6}, \
                 \"goodput_under_fault\": {:.6}, \"time_to_recovery_s\": {:.6}, \
                 \"throughput_per_slice\": {:.6}}}",
                c.policy,
                json_escape(&c.scenario),
                c.seed,
                c.completed,
                c.failed,
                c.shed,
                c.breaker_transitions,
                c.brownout_admits,
                c.retries_abandoned,
                c.fault_seconds,
                c.goodput_under_fault,
                c.time_to_recovery_s,
                c.throughput_per_slice,
            );
            let _ = writeln!(out, "{}", if i + 1 == self.cells.len() { "" } else { "," });
        }
        out.push_str("  ],\n  \"aggregates\": [\n");
        for (i, a) in self.aggregates.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"policy\": \"{}\", \"scenario\": \"{}\", \"seeds\": {}, ",
                a.policy,
                json_escape(&a.scenario),
                a.seeds
            );
            write_mean_ci(&mut out, "goodput_under_fault", a.goodput_under_fault);
            out.push_str(", ");
            write_mean_ci(&mut out, "time_to_recovery_s", a.time_to_recovery_s);
            out.push_str(", ");
            write_mean_ci(&mut out, "shed", a.shed);
            out.push_str(", ");
            write_mean_ci(&mut out, "retries_abandoned", a.retries_abandoned);
            out.push_str(", ");
            write_mean_ci(&mut out, "throughput_per_slice", a.throughput_per_slice);
            let _ = writeln!(
                out,
                "}}{}",
                if i + 1 == self.aggregates.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Characterize each scenario's workload once, fanned across `workers`
/// (shared by [`run_sweep`]-style drivers; deterministic per config).
fn characterize_scenarios(
    scenarios: &[String],
    scale: Scale,
    workers: usize,
) -> Vec<Arc<WorkloadProfiles>> {
    let mut profiles: Vec<Option<Arc<WorkloadProfiles>>> = vec![None; scenarios.len()];
    {
        let next = AtomicUsize::new(0);
        let slots = Mutex::new(&mut profiles);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(scenarios.len().max(1)) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(name) = scenarios.get(idx) else {
                        break;
                    };
                    let scenario = Scenario::builtin(name, scale)
                        .unwrap_or_else(|| panic!("unknown scenario {name:?}"));
                    let config = scenario.runtime_config();
                    let characterized = Arc::new(WorkloadProfiles::characterize_full(&config));
                    slots.lock().expect("no poisoned workers")[idx] = Some(characterized);
                });
            }
        });
    }
    profiles
        .into_iter()
        .map(|p| p.expect("every scenario characterized"))
        .collect()
}

fn write_mean_ci(out: &mut String, name: &str, m: MeanCi) {
    let _ = write!(
        out,
        "\"{}\": {{\"mean\": {:.6}, \"ci95\": {:.6}}}",
        name, m.mean, m.ci95
    );
}

impl PolicySweepOutcome {
    /// The `BENCH_policies.json` scoreboard: the deterministic grid plus
    /// per-(policy, scenario) aggregates with 95% confidence intervals. No
    /// wall-clock data — CI diffs the whole document between worker counts.
    pub fn policies_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"benchmark\": \"policies\",\n  \"scale\": \"");
        out.push_str(scale_str(self.scale));
        out.push_str("\",\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"policy\": \"{}\", \"scenario\": \"{}\", \"seed\": {}, \
                 \"submitted\": {}, \"completed\": {}, \"failed\": {}, \
                 \"best_effort\": {}, \"degraded_grants\": {}, \
                 \"admitted_grants\": {}, \"p99_wait_us\": {}, \
                 \"throughput_per_slice\": {:.6}}}",
                c.policy,
                json_escape(&c.scenario),
                c.seed,
                c.submitted,
                c.completed,
                c.failed,
                c.best_effort,
                c.degraded_grants,
                c.admitted_grants,
                c.p99_wait_us,
                c.throughput_per_slice,
            );
            let _ = writeln!(out, "{}", if i + 1 == self.cells.len() { "" } else { "," });
        }
        out.push_str("  ],\n  \"aggregates\": [\n");
        for (i, a) in self.aggregates.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"policy\": \"{}\", \"scenario\": \"{}\", \"seeds\": {}, ",
                a.policy,
                json_escape(&a.scenario),
                a.seeds
            );
            write_mean_ci(&mut out, "throughput_per_slice", a.throughput_per_slice);
            out.push_str(", ");
            write_mean_ci(&mut out, "p99_wait_us", a.p99_wait_us);
            out.push_str(", ");
            write_mean_ci(&mut out, "failure_rate", a.failure_rate);
            out.push_str(", ");
            write_mean_ci(&mut out, "degrade_rate", a.degrade_rate);
            let _ = writeln!(
                out,
                "}}{}",
                if i + 1 == self.aggregates.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(workers: usize) -> SweepSpec {
        SweepSpec {
            scenarios: vec!["compile_storm".to_string()],
            seeds: vec![2007, 2008],
            scale: Scale::Quick,
            workers,
            shards: 1,
        }
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree_cell_for_cell() {
        let sequential = run_sweep(&tiny_spec(1));
        let parallel = run_sweep(&tiny_spec(4));
        assert_eq!(sequential.cells, parallel.cells);
        assert_eq!(sequential.cells_json(), parallel.cells_json());
        // Every spawned worker runs its own untimed warm-up cell, so the
        // recorded warm-up wall time is a sum across workers — nonzero for
        // any worker count, and never part of a timed cell.
        assert!(sequential.warmup_wall_ms > 0.0);
        assert!(parallel.warmup_wall_ms > 0.0);
        assert_eq!(sequential.cells.len(), 2);
        for cell in &sequential.cells {
            assert!(
                cell.completed > 0,
                "cell {}/{} idle",
                cell.scenario,
                cell.seed
            );
            assert!(cell.events_dispatched > 0);
            assert!(cell.peak_queue_depth > 0);
        }
        // Different seeds really are different runs.
        assert_ne!(
            sequential.cells[0].trace_digest,
            sequential.cells[1].trace_digest
        );
        // Closed-loop scenarios have no open-loop arrivals; the fields are
        // present (for the gate) but zero, and the digest is the FNV
        // offset basis.
        for cell in &sequential.cells {
            assert_eq!(cell.arrivals, 0);
            assert_eq!(cell.arrivals_admitted, 0);
            assert_eq!(cell.arrivals_shed, 0);
        }
    }

    #[test]
    fn open_loop_cells_account_arrivals_and_stay_worker_invariant() {
        let spec = |workers| SweepSpec {
            scenarios: vec!["open_loop_poisson".to_string()],
            seeds: vec![2007, 2008],
            scale: Scale::Quick,
            workers,
            shards: 1,
        };
        let sequential = run_sweep(&spec(1));
        let parallel = run_sweep(&spec(4));
        assert_eq!(sequential.cells, parallel.cells);
        assert_eq!(sequential.cells_json(), parallel.cells_json());
        for cell in &sequential.cells {
            assert!(cell.arrivals > 0, "source offered nothing");
            assert_eq!(cell.arrivals, cell.arrivals_admitted + cell.arrivals_shed);
            assert!(cell.submitted > 0, "no arrival reached the pipeline");
        }
        // The arrival digest separates seeds just like the trace digest.
        assert_ne!(
            sequential.cells[0].arrival_digest,
            sequential.cells[1].arrival_digest
        );
    }

    #[test]
    fn sharded_sweep_cells_match_single_shard_cells_byte_for_byte() {
        let spec = |shards| SweepSpec {
            scenarios: vec!["open_loop_poisson".to_string()],
            seeds: vec![2007],
            scale: Scale::Quick,
            workers: 1,
            shards,
        };
        let single = run_sweep(&spec(1));
        let sharded = run_sweep(&spec(4));
        assert_eq!(single.cells, sharded.cells);
        assert_eq!(single.cells_json(), sharded.cells_json());
        assert!(single.cells[0].arrivals > 0, "open loop must offer load");
    }

    #[test]
    fn shard_scale_grid_reports_invariant_cells_and_a_speedup() {
        let spec = ShardScaleSpec {
            scenarios: vec!["open_loop_poisson".to_string()],
            seeds: vec![2007],
            scale: Scale::Quick,
            shard_counts: vec![1, 2],
            workers: 4,
        };
        let outcome = run_shard_scale(&spec);
        assert_eq!(outcome.cells.len(), 2);
        assert_eq!(outcome.cells[0].shards, 1);
        assert_eq!(outcome.cells[1].shards, 2);
        // The deterministic result is shard-count-invariant.
        assert_eq!(outcome.cells[0].cell, outcome.cells[1].cell);
        assert_eq!(outcome.speedups.len(), 1);
        assert_eq!(outcome.speedups[0].shards, 2);
        assert!(outcome.speedups[0].shard_speedup > 0.0);
        // The JSON parses and the gate extracts the speedup aggregate under
        // a shard-count-qualified key, distinct from the per-cell keys.
        let doc = crate::gate::parse(&outcome.shard_scale_json()).expect("own JSON parses");
        let entries = crate::gate::extract(&doc);
        let speedup = entries
            .iter()
            .find(|e| e.metric == "shard_speedup")
            .expect("speedup aggregate extracted");
        assert_eq!(speedup.key, "aggregate scenario=open_loop_poisson shards=2");
        assert!(entries
            .iter()
            .any(|e| e.key == "cell scenario=open_loop_poisson seed=2007 shards=1"));
        assert!(entries
            .iter()
            .any(|e| e.key == "cell scenario=open_loop_poisson seed=2007 shards=2"));
    }

    #[test]
    fn aggregate_events_per_sec_comes_from_steady_state_sums() {
        let outcome = run_sweep(&tiny_spec(1));
        assert!(outcome.warmup_wall_ms > 0.0, "warm-up cell must be timed");
        let steady_ms: f64 = outcome.timings.iter().map(|t| t.wall_ms).sum();
        let total_events: u64 = outcome.cells.iter().map(|c| c.events_dispatched).sum();
        let expected = total_events as f64 / (steady_ms / 1e3).max(1e-9);
        let json = outcome.full_json();
        let doc = crate::gate::parse(&json).expect("own JSON parses");
        let reported = doc.get("events_per_sec").and_then(|v| match v {
            crate::gate::Value::Num(n) => Some(*n),
            _ => None,
        });
        assert_eq!(reported, Some(expected.round()));
        // The aggregate excludes characterization and warm-up: steady wall
        // is strictly less than end-to-end wall.
        assert!(steady_ms < outcome.total_wall_ms);
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    fn tiny_policy_spec(workers: usize) -> PolicySweepSpec {
        PolicySweepSpec {
            policies: PolicyKind::all().to_vec(),
            scenarios: vec!["compile_storm".to_string()],
            seeds: vec![2007, 2008],
            scale: Scale::Quick,
            workers,
        }
    }

    fn tiny_resilience_spec(workers: usize) -> PolicySweepSpec {
        PolicySweepSpec {
            policies: vec![PolicyKind::Ladder, PolicyKind::Pid],
            scenarios: vec!["retry_storm".to_string()],
            seeds: vec![2007, 2008],
            scale: Scale::Quick,
            workers,
        }
    }

    #[test]
    fn resilience_grid_is_worker_count_invariant_and_sees_the_faults() {
        let sequential = run_resilience_sweep(&tiny_resilience_spec(1));
        let parallel = run_resilience_sweep(&tiny_resilience_spec(4));
        assert_eq!(sequential.cells, parallel.cells);
        assert_eq!(sequential.resilience_json(), parallel.resilience_json());
        // 2 policies x 1 scenario x 2 seeds.
        assert_eq!(sequential.cells.len(), 4);
        assert_eq!(sequential.aggregates.len(), 2);
        for cell in &sequential.cells {
            // The retry-storm fault window is a quarter of the run.
            assert!(
                cell.fault_seconds > 0.0,
                "cell {}/{}/{} saw no fault window",
                cell.policy,
                cell.scenario,
                cell.seed
            );
            assert!(cell.time_to_recovery_s >= 0.0);
            assert!(cell.goodput_under_fault >= 0.0);
        }
        for agg in &sequential.aggregates {
            assert_eq!(agg.seeds, 2, "{}/{} lost a seed", agg.policy, agg.scenario);
            assert!(agg.time_to_recovery_s.ci95 >= 0.0);
        }
    }

    #[test]
    fn policy_grid_is_worker_count_invariant_byte_for_byte() {
        let sequential = run_policy_sweep(&tiny_policy_spec(1));
        let parallel = run_policy_sweep(&tiny_policy_spec(4));
        assert_eq!(sequential.cells, parallel.cells);
        assert_eq!(sequential.policies_json(), parallel.policies_json());
        // 3 policies x 1 scenario x 2 seeds.
        assert_eq!(sequential.cells.len(), 6);
        assert_eq!(sequential.aggregates.len(), 3);
        for cell in &sequential.cells {
            assert!(
                cell.completed > 0,
                "cell {}/{}/{} idle",
                cell.policy,
                cell.scenario,
                cell.seed
            );
            assert!(cell.failure_rate() <= 1.0);
            assert!(cell.degrade_rate() <= 1.0);
        }
        for agg in &sequential.aggregates {
            assert_eq!(agg.seeds, 2, "{}/{} lost a seed", agg.policy, agg.scenario);
            assert!(agg.throughput_per_slice.mean > 0.0);
            assert!(agg.throughput_per_slice.ci95 >= 0.0);
        }
    }
}
