//! # throttledb-bench
//!
//! Shared helpers for the benchmark harness: the criterion micro-benchmarks
//! live in `benches/`, one binary per paper figure/table lives in
//! `src/bin/`, `src/bin/scenario_runner.rs` drives the declarative
//! scenario subsystem, and `src/bin/sweep.rs` fans (scenario × seed) cells
//! across worker threads via the [`sweep`] module. `docs/EXPERIMENTS.md`
//! (repo root) is the experiment book covering all of them.
//!
//! The figure binaries accept two optional positional arguments:
//! `quick|paper` (scale) and a seed, e.g.
//! `cargo run --release -p throttledb-bench --bin figure3_throughput_30 -- quick 7`.

#![deny(missing_docs)]

pub mod gate;
pub mod sweep;

use throttledb_engine::ServerConfig;

/// Parse the common CLI arguments of the figure binaries.
pub fn experiment_config(default_clients: u32) -> (ServerConfig, u32) {
    let args: Vec<String> = std::env::args().collect();
    let scale = args.get(1).map(String::as_str).unwrap_or("paper");
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2007);
    let mut cfg = match scale {
        "quick" => ServerConfig::quick(default_clients, true),
        _ => ServerConfig::paper(default_clients, true),
    };
    cfg.seed = seed;
    (cfg, default_clients)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_experiment_config_is_paper_scale() {
        let (cfg, clients) = experiment_config(30);
        assert_eq!(clients, 30);
        assert!(cfg.duration.as_secs() >= 28_800);
    }
}
