//! Micro-benchmark: gateway-ladder admission decisions (the per-allocation
//! overhead the paper claims is "extremely small").
use criterion::{criterion_group, criterion_main, Criterion};
use throttledb_core::{GatewayLadder, ThrottleConfig};
use throttledb_sim::SimTime;

fn bench_ladder(c: &mut Criterion) {
    c.bench_function("ladder_report_memory_1000_tasks", |b| {
        b.iter(|| {
            let mut ladder = GatewayLadder::new(ThrottleConfig::paper_machine());
            let tasks: Vec<_> = (0..1000).map(|_| ladder.begin_task()).collect();
            for (i, t) in tasks.iter().enumerate() {
                let bytes = (1 + i as u64 % 200) << 20;
                let _ = ladder.report_memory(*t, bytes, SimTime::from_secs(i as u64));
            }
            for t in &tasks {
                let _ = ladder.finish_task(*t, SimTime::from_secs(2000));
            }
            ladder.stats().clone()
        })
    });
}

criterion_group!(benches, bench_ladder);
criterion_main!(benches);
