//! T1 micro-benchmark: compile one SALES template and one TPC-H-like template
//! with the real optimizer, reporting wall time (compile memory is asserted
//! in the test suite and printed by table1_workload_characteristics).
use criterion::{criterion_group, criterion_main, Criterion};
use throttledb_catalog::{sales_schema, tpch_schema, SalesScale};
use throttledb_optimizer::Optimizer;
use throttledb_sqlparse::parse;
use throttledb_workload::{sales_templates, tpch_like_templates};

fn bench_compiles(c: &mut Criterion) {
    let sales_cat = sales_schema(SalesScale::paper());
    let sales_stmt = parse(&sales_templates()[0].sql).unwrap();
    let tpch_cat = tpch_schema(30.0);
    let tpch_stmt = parse(&tpch_like_templates()[2].sql).unwrap();

    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    group.bench_function("sales_q01_full_optimization", |b| {
        b.iter(|| {
            Optimizer::new(&sales_cat)
                .optimize(&sales_stmt)
                .unwrap()
                .stats
                .peak_memory_bytes
        })
    });
    group.bench_function("tpch_q5_like_full_optimization", |b| {
        b.iter(|| {
            Optimizer::new(&tpch_cat)
                .optimize(&tpch_stmt)
                .unwrap()
                .stats
                .peak_memory_bytes
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compiles);
criterion_main!(benches);
