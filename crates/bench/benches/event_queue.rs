//! Heap vs timing-wheel event-queue microbenchmark.
//!
//! Two patterns, each at 1k / 100k / 1M scheduled events:
//!
//! * **fill_drain** — schedule every event, then pop until empty (the
//!   shape of a sweep's final drain);
//! * **churn** — a closed-loop steady state: pop one event, schedule its
//!   successor at `popped.at + think-time`, repeat (the shape of the
//!   engine's event loop, with the pending-set size held at N).
//!
//! Besides the criterion groups, running this bench (`cargo bench -p
//! throttledb-bench --bench event_queue`) rewrites `BENCH_event_queue.json`
//! at the repo root with events/sec for both implementations and the
//! wheel/heap speedup — the measured record of the queue swap.

use criterion::{black_box, Criterion};
use std::fmt::Write as _;
use std::time::Instant;
use throttledb_sim::{EventQueue, HeapEventQueue, SimDuration, SimRng, SimTime};

/// Virtual horizon the fill pattern spreads its events over: ~30 s, the
/// density a "millions of users" run pushes through the queue.
const FILL_HORIZON_US: u64 = 30_000_000;

/// Think-time-like delays for the churn pattern: exponential with a 10 s
/// mean, so most successors land in the wheel's near window and the tail
/// exercises the far heap, like the engine's own mix.
fn churn_delay(rng: &mut SimRng) -> SimDuration {
    SimDuration::from_secs_f64(rng.exponential(10.0))
}

fn fill_times(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.uniform_u64(0, FILL_HORIZON_US))
        .collect()
}

fn fill_drain_wheel(times: &[u64]) -> u64 {
    let mut q = EventQueue::new();
    for (i, &t) in times.iter().enumerate() {
        q.schedule(SimTime::from_micros(t), i as u64);
    }
    let mut popped = 0;
    while let Some(e) = q.pop() {
        black_box(e.seq);
        popped += 1;
    }
    popped
}

fn fill_drain_heap(times: &[u64]) -> u64 {
    let mut q = HeapEventQueue::new();
    for (i, &t) in times.iter().enumerate() {
        q.schedule(SimTime::from_micros(t), i as u64);
    }
    let mut popped = 0;
    while let Some(e) = q.pop() {
        black_box(e.seq);
        popped += 1;
    }
    popped
}

/// Closed-loop churn over a pending set of `n` events: `rounds` pops, each
/// immediately replaced. Returns the number of dispatched events.
fn churn_wheel(n: usize, rounds: usize, seed: u64) -> u64 {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut q = EventQueue::new();
    for i in 0..n {
        let at = SimTime::ZERO + churn_delay(&mut rng);
        q.schedule(at, i as u64);
    }
    for _ in 0..rounds {
        let e = q.pop().expect("closed loop never drains");
        q.schedule(e.at + churn_delay(&mut rng), e.payload);
    }
    q.dispatched()
}

fn churn_heap(n: usize, rounds: usize, seed: u64) -> u64 {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut q = HeapEventQueue::new();
    let mut dispatched = 0;
    for i in 0..n {
        let at = SimTime::ZERO + churn_delay(&mut rng);
        q.schedule(at, i as u64);
    }
    for _ in 0..rounds {
        let e = q.pop().expect("closed loop never drains");
        dispatched += 1;
        q.schedule(e.at + churn_delay(&mut rng), e.payload);
    }
    dispatched
}

/// Best-of-`runs` events/sec for `f`, which reports how many events it
/// dispatched.
fn measure(runs: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..runs {
        let start = Instant::now();
        let events = f();
        let eps = events as f64 / start.elapsed().as_secs_f64().max(1e-12);
        best = best.max(eps);
    }
    best
}

struct Row {
    pattern: &'static str,
    events: usize,
    heap_eps: f64,
    wheel_eps: f64,
}

fn main() {
    // Criterion groups for the small/medium sizes (the 1M case is measured
    // directly below; a 20-sample criterion pass over it is needlessly slow).
    let mut c = Criterion::default();
    for &n in &[1_000usize, 100_000] {
        let times = fill_times(n, 7);
        let mut group = c.benchmark_group(format!("event_queue/fill_drain_{n}"));
        group.sample_size(10);
        group.bench_function("heap", |b| b.iter(|| fill_drain_heap(black_box(&times))));
        group.bench_function("wheel", |b| b.iter(|| fill_drain_wheel(black_box(&times))));
        group.finish();
    }

    // The measured record: both patterns at 1k / 100k / 1M. A single run at
    // the small sizes lasts ~100 µs, well inside scheduler/turbo noise, so
    // best-of over many runs is what makes the recorded ratio meaningful.
    let best_of = |n: usize| match n {
        n if n >= 1_000_000 => 3,
        n if n >= 100_000 => 5,
        _ => 100,
    };
    let mut rows = Vec::new();
    for &n in &[1_000usize, 100_000, 1_000_000] {
        let times = fill_times(n, 7);
        let runs = best_of(n);
        rows.push(Row {
            pattern: "fill_drain",
            events: n,
            heap_eps: measure(runs, || fill_drain_heap(&times)),
            wheel_eps: measure(runs, || fill_drain_wheel(&times)),
        });
    }
    for &n in &[1_000usize, 100_000, 1_000_000] {
        // Dispatch 2N events against a pending set held at N.
        let rounds = n * 2;
        let runs = best_of(n);
        rows.push(Row {
            pattern: "churn",
            events: n,
            heap_eps: measure(runs, || churn_heap(n, rounds, 11)),
            wheel_eps: measure(runs, || churn_wheel(n, rounds, 11)),
        });
    }

    println!(
        "\n{:<12} {:>10} {:>16} {:>16} {:>9}",
        "pattern", "events", "heap ev/s", "wheel ev/s", "speedup"
    );
    let mut json = String::from("{\n  \"benchmark\": \"event_queue\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.wheel_eps / r.heap_eps.max(1e-12);
        println!(
            "{:<12} {:>10} {:>16.0} {:>16.0} {:>8.2}x",
            r.pattern, r.events, r.heap_eps, r.wheel_eps, speedup
        );
        let _ = writeln!(
            json,
            "    {{\"pattern\": \"{}\", \"events\": {}, \"heap_events_per_sec\": {:.0}, \
             \"wheel_events_per_sec\": {:.0}, \"speedup\": {:.2}}}{}",
            r.pattern,
            r.events,
            r.heap_eps,
            r.wheel_eps,
            speedup,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_event_queue.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nrecorded to {path}"),
        Err(e) => eprintln!("\ncannot record {path}: {e}"),
    }
}
