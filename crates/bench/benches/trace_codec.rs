//! Trace-plane I/O benchmark: v1 text codec vs v2 binary frame codec.
//!
//! Three event streams, spanning the shapes the trace plane actually
//! carries:
//!
//! * **retry_storm** (quick, seed 2007) — a small chaos trace, dominated
//!   by breaker/fault events;
//! * **open_loop_scale** (quick, seed 2007) — the ≥10M-offered-arrival
//!   firehose cell, the stream the `--trace-v2` acceptance target is
//!   defined on;
//! * **synthetic_1m** — a deterministic ~1M-event stream with the
//!   firehose's event mix, for codec throughput well past scenario
//!   runtime.
//!
//! For each stream and codec the bench measures encode and decode
//! events/sec (best-of, like `event_queue`) and bytes/event, asserts the
//! round trip reproduces the stream bit-exactly, and rewrites
//! `BENCH_trace.json` at the repo root. The v2-over-v1 aggregates
//! (`size_ratio`, `encode_speedup`, `decode_speedup`) are gated against
//! `crates/bench/baselines/BENCH_trace.json` in CI, and the
//! open_loop_scale cell must clear the 5x bar outright — the bench fails
//! loudly if the codec ever regresses below it.

use criterion::{black_box, Criterion};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use throttledb_engine::{FailureKind, TraceEvent, WorkloadProfiles};
use throttledb_scenario::{Scale, Scenario, ScenarioRunner, Trace, TraceReaderV2, TraceWriterV2};
use throttledb_sim::{SimRng, SimTime};

/// Record one built-in scenario's quick-scale trace.
fn scenario_events(name: &str, seed: u64) -> (Vec<TraceEvent>, Vec<String>, u64) {
    let scenario = Scenario::builtin(name, Scale::Quick)
        .unwrap_or_else(|| panic!("unknown scenario {name}"))
        .with_seed(seed);
    let catalog = scenario.trace_catalog();
    let config_digest = scenario.config_digest();
    let mut base = scenario.runtime_config();
    base.warmup = throttledb_sim::SimDuration::ZERO;
    let profiles = Arc::new(WorkloadProfiles::characterize_full(&base));
    let outcome = ScenarioRunner::new(scenario)
        .record_trace(true)
        .with_profiles(profiles)
        .run();
    let events = outcome.trace.expect("recording was enabled").into_events();
    (events, catalog, config_digest)
}

/// A deterministic ~1M-event stream with the firehose's mix: mostly
/// submissions and failures, a thin band of completions, periodic
/// compile-peak gauge movement — near-sorted ids and times like the
/// engine emits.
fn synthetic_events(n: usize) -> Vec<TraceEvent> {
    let mut rng = SimRng::seed_from_u64(2007);
    let mut events = Vec::with_capacity(n + 2);
    events.push(TraceEvent::PhaseStart {
        at: SimTime::ZERO,
        name: "firehose".to_string(),
        clients: 64,
    });
    let mut at_us = 0u64;
    let mut query = 0u64;
    let mut peak = 512u64 << 20;
    while events.len() < n + 1 {
        at_us += rng.uniform_u64(0, 700);
        let at = SimTime::from_micros(at_us);
        query += 1;
        match rng.uniform_u64(0, 100) {
            0..=55 => events.push(TraceEvent::Submitted {
                at,
                query,
                client: (query % 64) as u32,
                class: (query % 3) as usize,
            }),
            56..=79 => events.push(TraceEvent::Failed {
                at,
                query: query.saturating_sub(rng.uniform_u64(0, 16)),
                kind: if query % 3 == 0 {
                    FailureKind::OutOfMemory
                } else {
                    FailureKind::CompileTimeout
                },
            }),
            80..=89 => events.push(TraceEvent::GatewayBlocked {
                at,
                query,
                level: (query % 4) as usize,
            }),
            90..=95 => {
                peak = peak.wrapping_add(rng.uniform_u64(0, 8 << 20));
                events.push(TraceEvent::CompilePeak { at, bytes: peak });
            }
            _ => events.push(TraceEvent::Completed {
                at,
                query: query.saturating_sub(rng.uniform_u64(0, 64)),
            }),
        }
    }
    events.push(TraceEvent::End {
        at: SimTime::from_micros(at_us + 1),
    });
    events
}

fn v2_encode(events: &[TraceEvent], catalog: &[String], config_digest: u64) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(events.len() * 8);
    let mut w = TraceWriterV2::new(&mut bytes, catalog, config_digest).expect("Vec never fails");
    for ev in events {
        w.write_event(ev).expect("Vec never fails");
    }
    w.finish().expect("Vec never fails");
    bytes
}

fn v2_decode(bytes: &[u8]) -> Vec<TraceEvent> {
    TraceReaderV2::new(bytes)
        .expect("own stream parses")
        .collect::<Result<Vec<_>, _>>()
        .expect("own stream decodes")
}

/// Best-of-`runs` events/sec for one codec pass over `events_n` events.
fn measure(runs: usize, events_n: usize, mut f: impl FnMut()) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..runs {
        let start = Instant::now();
        f();
        let eps = events_n as f64 / start.elapsed().as_secs_f64().max(1e-12);
        best = best.max(eps);
    }
    best
}

struct CodecRow {
    scenario: String,
    codec: &'static str,
    events: usize,
    bytes: usize,
    encode_eps: f64,
    decode_eps: f64,
}

struct SpeedupRow {
    scenario: String,
    size_ratio: f64,
    encode_speedup: f64,
    decode_speedup: f64,
}

fn main() {
    let streams: Vec<(String, Vec<TraceEvent>, Vec<String>, u64)> = {
        let (rs, rs_cat, rs_cfg) = scenario_events("retry_storm", 2007);
        let (ols, ols_cat, ols_cfg) = scenario_events("open_loop_scale", 2007);
        vec![
            ("retry_storm".to_string(), rs, rs_cat, rs_cfg),
            ("open_loop_scale".to_string(), ols, ols_cat, ols_cfg),
            (
                "synthetic_1m".to_string(),
                synthetic_events(1_000_000),
                vec!["firehose".to_string()],
                0,
            ),
        ]
    };

    // A criterion group over the acceptance-relevant stream, for
    // interactive `cargo bench` comparisons.
    {
        let (_, events, catalog, config) = &streams[1];
        let trace = Trace::new(events.clone());
        let v1_text = trace.encode();
        let v2_bytes = v2_encode(events, catalog, *config);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("trace_codec/open_loop_scale");
        group.sample_size(10);
        group.bench_function("v1_encode", |b| b.iter(|| black_box(trace.encode())));
        group.bench_function("v2_encode", |b| {
            b.iter(|| black_box(v2_encode(events, catalog, *config)))
        });
        group.bench_function("v1_decode", |b| {
            b.iter(|| black_box(Trace::decode(&v1_text).expect("own text parses")))
        });
        group.bench_function("v2_decode", |b| b.iter(|| black_box(v2_decode(&v2_bytes))));
        group.finish();
    }

    let best_of = |n: usize| if n >= 1_000_000 { 3 } else { 20 };
    let mut rows: Vec<CodecRow> = Vec::new();
    let mut speedups: Vec<SpeedupRow> = Vec::new();
    for (name, events, catalog, config) in &streams {
        let n = events.len();
        let runs = best_of(n);
        let trace = Trace::new(events.clone());

        let v1_text = trace.encode();
        let v1_encode_eps = measure(runs, n, || {
            black_box(trace.encode());
        });
        let v1_decode_eps = measure(runs, n, || {
            black_box(Trace::decode(&v1_text).expect("own text parses"));
        });
        // The codecs must be lossless before their speed means anything.
        assert_eq!(
            Trace::decode(&v1_text).expect("own text parses").events(),
            &events[..],
            "{name}: v1 round trip diverged"
        );

        let v2_bytes = v2_encode(events, catalog, *config);
        let v2_encode_eps = measure(runs, n, || {
            black_box(v2_encode(events, catalog, *config));
        });
        let v2_decode_eps = measure(runs, n, || {
            black_box(v2_decode(&v2_bytes));
        });
        assert_eq!(
            v2_decode(&v2_bytes),
            events[..],
            "{name}: v2 round trip diverged"
        );

        let row = SpeedupRow {
            scenario: name.clone(),
            size_ratio: v1_text.len() as f64 / v2_bytes.len() as f64,
            encode_speedup: v2_encode_eps / v1_encode_eps.max(1e-12),
            decode_speedup: v2_decode_eps / v1_decode_eps.max(1e-12),
        };
        rows.push(CodecRow {
            scenario: name.clone(),
            codec: "v1",
            events: n,
            bytes: v1_text.len(),
            encode_eps: v1_encode_eps,
            decode_eps: v1_decode_eps,
        });
        rows.push(CodecRow {
            scenario: name.clone(),
            codec: "v2",
            events: n,
            bytes: v2_bytes.len(),
            encode_eps: v2_encode_eps,
            decode_eps: v2_decode_eps,
        });
        speedups.push(row);
    }

    println!(
        "\n{:<16} {:>4} {:>9} {:>9} {:>7} {:>14} {:>14}",
        "scenario", "codec", "events", "bytes", "B/ev", "encode ev/s", "decode ev/s"
    );
    for r in &rows {
        println!(
            "{:<16} {:>4} {:>9} {:>9} {:>7.2} {:>14.0} {:>14.0}",
            r.scenario,
            r.codec,
            r.events,
            r.bytes,
            r.bytes as f64 / r.events as f64,
            r.encode_eps,
            r.decode_eps
        );
    }
    println!(
        "\n{:<16} {:>10} {:>15} {:>15}",
        "scenario", "size x", "encode x", "decode x"
    );
    for s in &speedups {
        println!(
            "{:<16} {:>9.2}x {:>14.2}x {:>14.2}x",
            s.scenario, s.size_ratio, s.encode_speedup, s.decode_speedup
        );
    }

    // The tentpole acceptance bar, enforced at measurement time: on the
    // scale cell, v2 must be at least 5x smaller and 5x faster than v1 in
    // both directions.
    let scale = speedups
        .iter()
        .find(|s| s.scenario == "open_loop_scale")
        .expect("scale stream measured");
    for (what, value) in [
        ("size_ratio", scale.size_ratio),
        ("encode_speedup", scale.encode_speedup),
        ("decode_speedup", scale.decode_speedup),
    ] {
        assert!(
            value >= 5.0,
            "open_loop_scale {what} fell below the 5x acceptance bar: {value:.2}x"
        );
    }

    let mut json = String::from("{\n  \"benchmark\": \"trace_codec\",\n  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"codec\": \"{}\", \"events\": {}, \"bytes\": {}, \
             \"bytes_per_event\": {:.2}, \"encode_events_per_sec\": {:.0}, \
             \"decode_events_per_sec\": {:.0}}}{}",
            r.scenario,
            r.codec,
            r.events,
            r.bytes,
            r.bytes as f64 / r.events as f64,
            r.encode_eps,
            r.decode_eps,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"aggregates\": [\n");
    for (i, s) in speedups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"codec\": \"v2\", \"size_ratio\": {:.2}, \
             \"encode_speedup\": {:.2}, \"decode_speedup\": {:.2}}}{}",
            s.scenario,
            s.size_ratio,
            s.encode_speedup,
            s.decode_speedup,
            if i + 1 < speedups.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nrecorded to {path}"),
        Err(e) => eprintln!("\ncannot record {path}: {e}"),
    }
}
