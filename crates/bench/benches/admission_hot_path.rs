//! Micro-benchmark: the governor layer's admission hot path.
//!
//! The shared [`WaitQueue`] sits on every admission decision the system
//! makes — gateway-ladder waits, execution grant waits, per-class pools —
//! so its enqueue/dequeue and timeout-cancel costs must stay flat as the
//! waiter population grows from 1k to 10k.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use throttledb_governor::{ResourcePool, WaitQueue};
use throttledb_sim::SimTime;

fn bench_wait_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("wait_queue");
    for &n in &[1_000u64, 10_000] {
        group.bench_function(&format!("enqueue_dequeue/{n}"), |b| {
            b.iter(|| {
                let mut q = WaitQueue::new();
                for i in 0..n {
                    q.push(i, SimTime::from_secs(i), SimTime::MAX);
                }
                let mut sum = 0u64;
                while let Some(w) = q.pop_front() {
                    sum += w.payload;
                }
                sum
            })
        });
        // Timeout storms cancel waiters from the middle of the queue: the
        // slot-indexed tickets make each cancel O(1) where the old
        // `VecDeque::retain` queues were O(queue length).
        group.bench_function(&format!("timeout_cancel/{n}"), |b| {
            b.iter(|| {
                let mut q = WaitQueue::new();
                let keys: Vec<_> = (0..n)
                    .map(|i| q.push(i, SimTime::from_secs(i), SimTime::from_secs(i + 60)))
                    .collect();
                // Cancel every other waiter (interior cancels), then drain.
                for k in keys.iter().step_by(2) {
                    black_box(q.cancel(*k));
                }
                let mut survivors = 0u64;
                while q.pop_front().is_some() {
                    survivors += 1;
                }
                survivors
            })
        });
    }
    group.finish();
}

fn bench_resource_pool(c: &mut Criterion) {
    const MB: u64 = 1 << 20;
    let mut group = c.benchmark_group("resource_pool");
    for &n in &[1_000u64, 10_000] {
        // Saturate a pool so half the requests queue, then release
        // everything, letting the FIFO admission loop churn through the
        // backlog — the grant manager's steady-state pattern.
        group.bench_function(&format!("request_release/{n}"), |b| {
            b.iter(|| {
                let mut pool: ResourcePool<u64> = ResourcePool::new("bench", n / 2 * MB, 0.25);
                for i in 0..n {
                    pool.request(i, MB, SimTime::from_secs(i), SimTime::MAX);
                }
                let mut admitted = 0usize;
                for i in 0..n {
                    admitted += pool.release(i, SimTime::from_secs(n + i)).len();
                }
                admitted
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wait_queue, bench_resource_pool);
criterion_main!(benches);
