//! The client model: a closed-loop population of simulated users.
//!
//! §5.2: the benchmark is driven by "a custom load generator which simulates
//! a number of concurrent database users who submit queries to the database
//! server". Each client is closed-loop: it submits a query, waits for it to
//! complete (or fail), thinks for a while, and submits the next one. Failed
//! queries are resubmitted after a back-off, because "those aborted queries
//! likely need to be resubmitted to the system".

use crate::catalog::{TemplateCatalog, TemplateId};
use crate::mix::WorkloadMix;
use crate::templates::{QueryTemplate, WorkloadKind};
use serde::{Deserialize, Serialize};
use throttledb_sim::{SimDuration, SimRng};

/// Parameters of the client population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientModel {
    /// Mean think time between a completion and the next submission.
    pub mean_think_time: SimDuration,
    /// Base back-off before resubmitting after a failure; consecutive
    /// failures double it (capped at
    /// [`ClientModel::retry_backoff_cap`]).
    pub retry_backoff: SimDuration,
    /// Ceiling on the exponential retry back-off: however long a failure
    /// streak grows, the next retry comes within this bound (± jitter).
    pub retry_backoff_cap: SimDuration,
    /// Probability that a submission is drawn from the OLTP/diagnostic mix
    /// instead of the main DSS templates (small but non-zero, as real
    /// deployments always have monitoring queries running).
    pub oltp_fraction: f64,
    /// Zipf skew over the DSS templates (0 = uniform template choice).
    pub template_skew: f64,
}

impl Default for ClientModel {
    fn default() -> Self {
        ClientModel {
            mean_think_time: SimDuration::from_secs(20),
            retry_backoff: SimDuration::from_secs(30),
            retry_backoff_cap: SimDuration::from_secs(240),
            oltp_fraction: 0.05,
            template_skew: 0.3,
        }
    }
}

impl ClientModel {
    /// Draw a think time for one client.
    pub fn think_time(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.exponential(self.mean_think_time.as_secs_f64()))
    }

    /// Draw the back-off before retry number `attempt` (1-based) of a
    /// failure streak: capped exponential back-off with ±50% jitter.
    ///
    /// The first attempt draws exactly the flat back-off the model used
    /// before the exponential ladder existed — one `jitter(0.5)` draw of
    /// `retry_backoff` — so seeded runs only diverge from the historical
    /// stream when a client actually fails twice in a row.
    pub fn retry_delay(&self, rng: &mut SimRng, attempt: u32) -> SimDuration {
        let exponent = attempt.saturating_sub(1).min(16);
        let backoff = (self.retry_backoff.as_secs_f64() * (1u64 << exponent) as f64)
            .min(self.retry_backoff_cap.as_secs_f64());
        SimDuration::from_secs_f64(backoff * rng.jitter(0.5))
    }

    /// Choose the next template for a client, given the DSS templates and the
    /// OLTP templates.
    pub fn choose_template<'a>(
        &self,
        dss: &'a [QueryTemplate],
        oltp: &'a [QueryTemplate],
        rng: &mut SimRng,
    ) -> &'a QueryTemplate {
        let mix = WorkloadMix::paper_default(self.oltp_fraction);
        self.choose_mixed(&mix, dss, &[], oltp, rng)
    }

    /// Choose the next template from an explicit [`WorkloadMix`] over the
    /// three template families. DSS-style families (SALES, TPC-H-like) use
    /// the Zipf skew over their template lists; OLTP picks uniformly. An
    /// empty `tpch` or `oltp` set folds that family's weight into SALES.
    pub fn choose_mixed<'a>(
        &self,
        mix: &WorkloadMix,
        sales: &'a [QueryTemplate],
        tpch: &'a [QueryTemplate],
        oltp: &'a [QueryTemplate],
        rng: &mut SimRng,
    ) -> &'a QueryTemplate {
        assert!(!sales.is_empty(), "need at least one SALES template");
        match mix.sample(rng, !tpch.is_empty(), !oltp.is_empty()) {
            WorkloadKind::Oltp => rng.choose(oltp),
            WorkloadKind::TpchLike => &tpch[rng.zipf(tpch.len(), self.template_skew)],
            WorkloadKind::Sales => &sales[rng.zipf(sales.len(), self.template_skew)],
        }
    }

    /// Copy-free variant of [`ClientModel::choose_mixed`]: choose the next
    /// template as an interned [`TemplateId`] from a [`TemplateCatalog`].
    ///
    /// Consumes exactly the same RNG draws in the same order as
    /// `choose_mixed` over the catalog's family lists (verified by test),
    /// so the engine's switch to interned ids left every seeded run's
    /// template sequence unchanged.
    pub fn choose_id(
        &self,
        mix: &WorkloadMix,
        catalog: &TemplateCatalog,
        rng: &mut SimRng,
    ) -> TemplateId {
        let (sales, tpch, oltp) = (catalog.sales(), catalog.tpch(), catalog.oltp());
        assert!(!sales.is_empty(), "need at least one SALES template");
        match mix.sample(rng, !tpch.is_empty(), !oltp.is_empty()) {
            WorkloadKind::Oltp => *rng.choose(oltp),
            WorkloadKind::TpchLike => tpch[rng.zipf(tpch.len(), self.template_skew)],
            WorkloadKind::Sales => sales[rng.zipf(sales.len(), self.template_skew)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{oltp_templates, sales_templates, WorkloadKind};

    #[test]
    fn think_times_have_roughly_the_configured_mean() {
        let m = ClientModel::default();
        let mut rng = SimRng::seed_from_u64(3);
        let n = 5_000;
        let total: f64 = (0..n).map(|_| m.think_time(&mut rng).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 20.0).abs() < 2.0, "mean think time {mean}");
    }

    #[test]
    fn retry_delay_is_positive_and_jittered() {
        let m = ClientModel::default();
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..100 {
            let d = m.retry_delay(&mut rng, 1);
            assert!(d > SimDuration::from_secs(10));
            assert!(d < SimDuration::from_secs(60));
        }
    }

    #[test]
    fn first_retry_matches_the_historical_flat_backoff() {
        // Attempt 1 must consume one jitter(0.5) draw of retry_backoff —
        // the exact stream the flat model drew — so seeded runs without
        // consecutive failures are unchanged by the backoff ladder.
        let m = ClientModel::default();
        let mut rng_new = SimRng::seed_from_u64(17);
        let mut rng_old = SimRng::seed_from_u64(17);
        for _ in 0..500 {
            let new = m.retry_delay(&mut rng_new, 1);
            let old =
                SimDuration::from_secs_f64(m.retry_backoff.as_secs_f64() * rng_old.jitter(0.5));
            assert_eq!(new, old);
        }
    }

    #[test]
    fn backoff_doubles_then_saturates_at_the_cap() {
        let m = ClientModel::default();
        // Expected deterministic bounds per attempt: base 30 s doubles
        // 30, 60, 120, 240 and stays at the 240 s cap; jitter is ±50%.
        for (attempt, base) in [(1u32, 30.0), (2, 60.0), (3, 120.0), (4, 240.0), (9, 240.0)] {
            let mut rng = SimRng::seed_from_u64(23);
            for _ in 0..200 {
                let d = m.retry_delay(&mut rng, attempt).as_secs_f64();
                assert!(d >= base * 0.5 - 1e-9, "attempt {attempt}: {d} too short");
                assert!(d <= base * 1.5 + 1e-9, "attempt {attempt}: {d} too long");
            }
        }
        // Huge streaks do not overflow the exponent.
        let mut rng = SimRng::seed_from_u64(29);
        let d = m.retry_delay(&mut rng, u32::MAX);
        assert!(d <= SimDuration::from_secs_f64(240.0 * 1.5));
    }

    #[test]
    fn template_choice_respects_oltp_fraction() {
        let m = ClientModel {
            oltp_fraction: 0.5,
            ..ClientModel::default()
        };
        let dss = sales_templates();
        let oltp = oltp_templates();
        let mut rng = SimRng::seed_from_u64(7);
        let mut oltp_count = 0;
        for _ in 0..2_000 {
            if m.choose_template(&dss, &oltp, &mut rng).kind == WorkloadKind::Oltp {
                oltp_count += 1;
            }
        }
        assert!(
            (800..1200).contains(&oltp_count),
            "oltp picks: {oltp_count}"
        );
    }

    #[test]
    fn zero_oltp_fraction_never_picks_oltp() {
        let m = ClientModel {
            oltp_fraction: 0.0,
            ..ClientModel::default()
        };
        let dss = sales_templates();
        let oltp = oltp_templates();
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..500 {
            assert_eq!(
                m.choose_template(&dss, &oltp, &mut rng).kind,
                WorkloadKind::Sales
            );
        }
    }

    #[test]
    fn choose_mixed_draws_from_all_three_families() {
        use crate::templates::tpch_like_templates;
        let m = ClientModel::default();
        let mix = crate::mix::WorkloadMix::new(0.4, 0.4, 0.2);
        let sales = sales_templates();
        let tpch = tpch_like_templates();
        let oltp = oltp_templates();
        let mut rng = SimRng::seed_from_u64(13);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..500 {
            kinds.insert(m.choose_mixed(&mix, &sales, &tpch, &oltp, &mut rng).kind);
        }
        assert_eq!(kinds.len(), 3, "all families should be sampled: {kinds:?}");
    }

    #[test]
    fn choose_template_is_equivalent_to_the_paper_default_mix() {
        // The legacy entry point must consume the identical RNG stream as
        // choose_mixed with the paper-default mix, or seeded experiment
        // results would shift under the scenario generalization.
        let m = ClientModel::default();
        let sales = sales_templates();
        let oltp = oltp_templates();
        let mix = crate::mix::WorkloadMix::paper_default(m.oltp_fraction);
        let mut rng_a = SimRng::seed_from_u64(21);
        let mut rng_b = SimRng::seed_from_u64(21);
        for _ in 0..1_000 {
            let a = m.choose_template(&sales, &oltp, &mut rng_a);
            let b = m.choose_mixed(&mix, &sales, &[], &oltp, &mut rng_b);
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn choose_id_matches_choose_mixed_draw_for_draw() {
        use crate::catalog::TemplateCatalog;
        use crate::templates::tpch_like_templates;
        // The interned chooser must consume the identical RNG stream and
        // pick the identical template as the slice-based chooser, or the
        // template-id refactor would shift every seeded experiment.
        let m = ClientModel::default();
        let sales = sales_templates();
        let tpch = tpch_like_templates();
        let oltp = oltp_templates();
        let catalog = TemplateCatalog::from_templates(
            sales.iter().chain(tpch.iter()).chain(oltp.iter()).cloned(),
        );
        let mix = crate::mix::WorkloadMix::new(0.6, 0.25, 0.15);
        let mut rng_a = SimRng::seed_from_u64(41);
        let mut rng_b = SimRng::seed_from_u64(41);
        for _ in 0..2_000 {
            let by_ref = m.choose_mixed(&mix, &sales, &tpch, &oltp, &mut rng_a);
            let by_id = m.choose_id(&mix, &catalog, &mut rng_b);
            assert_eq!(by_ref.name, catalog.name(by_id));
        }
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn all_dss_templates_are_reachable() {
        let m = ClientModel::default();
        let dss = sales_templates();
        let oltp = oltp_templates();
        let mut rng = SimRng::seed_from_u64(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(m.choose_template(&dss, &oltp, &mut rng).name.clone());
        }
        let dss_seen = seen.iter().filter(|n| n.starts_with("sales_")).count();
        assert_eq!(
            dss_seen,
            dss.len(),
            "every template should eventually be chosen"
        );
    }
}
