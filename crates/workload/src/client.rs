//! The client model: a closed-loop population of simulated users.
//!
//! §5.2: the benchmark is driven by "a custom load generator which simulates
//! a number of concurrent database users who submit queries to the database
//! server". Each client is closed-loop: it submits a query, waits for it to
//! complete (or fail), thinks for a while, and submits the next one. Failed
//! queries are resubmitted after a back-off, because "those aborted queries
//! likely need to be resubmitted to the system".

use crate::templates::QueryTemplate;
use serde::{Deserialize, Serialize};
use throttledb_sim::{SimDuration, SimRng};

/// Parameters of the client population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientModel {
    /// Mean think time between a completion and the next submission.
    pub mean_think_time: SimDuration,
    /// Back-off before resubmitting after a failure.
    pub retry_backoff: SimDuration,
    /// Probability that a submission is drawn from the OLTP/diagnostic mix
    /// instead of the main DSS templates (small but non-zero, as real
    /// deployments always have monitoring queries running).
    pub oltp_fraction: f64,
    /// Zipf skew over the DSS templates (0 = uniform template choice).
    pub template_skew: f64,
}

impl Default for ClientModel {
    fn default() -> Self {
        ClientModel {
            mean_think_time: SimDuration::from_secs(20),
            retry_backoff: SimDuration::from_secs(30),
            oltp_fraction: 0.05,
            template_skew: 0.3,
        }
    }
}

impl ClientModel {
    /// Draw a think time for one client.
    pub fn think_time(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.exponential(self.mean_think_time.as_secs_f64()))
    }

    /// Draw the back-off before a retry.
    pub fn retry_delay(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.retry_backoff.as_secs_f64() * rng.jitter(0.5))
    }

    /// Choose the next template for a client, given the DSS templates and the
    /// OLTP templates.
    pub fn choose_template<'a>(
        &self,
        dss: &'a [QueryTemplate],
        oltp: &'a [QueryTemplate],
        rng: &mut SimRng,
    ) -> &'a QueryTemplate {
        assert!(!dss.is_empty(), "need at least one DSS template");
        if !oltp.is_empty() && rng.unit() < self.oltp_fraction {
            rng.choose(oltp)
        } else {
            let idx = rng.zipf(dss.len(), self.template_skew);
            &dss[idx]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{oltp_templates, sales_templates, WorkloadKind};

    #[test]
    fn think_times_have_roughly_the_configured_mean() {
        let m = ClientModel::default();
        let mut rng = SimRng::seed_from_u64(3);
        let n = 5_000;
        let total: f64 = (0..n).map(|_| m.think_time(&mut rng).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 20.0).abs() < 2.0, "mean think time {mean}");
    }

    #[test]
    fn retry_delay_is_positive_and_jittered() {
        let m = ClientModel::default();
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..100 {
            let d = m.retry_delay(&mut rng);
            assert!(d > SimDuration::from_secs(10));
            assert!(d < SimDuration::from_secs(60));
        }
    }

    #[test]
    fn template_choice_respects_oltp_fraction() {
        let m = ClientModel {
            oltp_fraction: 0.5,
            ..ClientModel::default()
        };
        let dss = sales_templates();
        let oltp = oltp_templates();
        let mut rng = SimRng::seed_from_u64(7);
        let mut oltp_count = 0;
        for _ in 0..2_000 {
            if m.choose_template(&dss, &oltp, &mut rng).kind == WorkloadKind::Oltp {
                oltp_count += 1;
            }
        }
        assert!(
            (800..1200).contains(&oltp_count),
            "oltp picks: {oltp_count}"
        );
    }

    #[test]
    fn zero_oltp_fraction_never_picks_oltp() {
        let m = ClientModel {
            oltp_fraction: 0.0,
            ..ClientModel::default()
        };
        let dss = sales_templates();
        let oltp = oltp_templates();
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..500 {
            assert_eq!(
                m.choose_template(&dss, &oltp, &mut rng).kind,
                WorkloadKind::Sales
            );
        }
    }

    #[test]
    fn all_dss_templates_are_reachable() {
        let m = ClientModel::default();
        let dss = sales_templates();
        let oltp = oltp_templates();
        let mut rng = SimRng::seed_from_u64(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(m.choose_template(&dss, &oltp, &mut rng).name.clone());
        }
        let dss_seen = seen.iter().filter(|n| n.starts_with("sales_")).count();
        assert_eq!(
            dss_seen,
            dss.len(),
            "every template should eventually be chosen"
        );
    }
}
