//! Interned query templates.
//!
//! The engine submits hundreds of thousands of queries per simulated run,
//! and every submission used to clone its chosen [`QueryTemplate`] — two
//! `String` allocations (name + SQL) per query — just to carry the template
//! identity through compile/grant/execute. A [`TemplateCatalog`] interns
//! each template once and hands out copyable [`TemplateId`]s instead; the
//! hot path passes 4-byte ids through the pipeline stages, the plan cache
//! and the profile table, and only dereferences them against the catalog
//! when the template text or name is actually needed.

use crate::templates::{QueryTemplate, WorkloadKind};
use serde::{Deserialize, Serialize};

/// A compact handle to an interned [`QueryTemplate`].
///
/// Ids are indices into the owning [`TemplateCatalog`], assigned in
/// interning order; they are stable for the catalog's lifetime and
/// meaningless across catalogs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TemplateId(u32);

impl TemplateId {
    /// The id as a dense index (for parallel lookup tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only intern table of query templates, with per-family id
/// lists for workload-mix sampling.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TemplateCatalog {
    templates: Vec<QueryTemplate>,
    sales: Vec<TemplateId>,
    tpch: Vec<TemplateId>,
    oltp: Vec<TemplateId>,
}

impl TemplateCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        TemplateCatalog::default()
    }

    /// A catalog over the given template lists (interned in order).
    pub fn from_templates(templates: impl IntoIterator<Item = QueryTemplate>) -> Self {
        let mut catalog = TemplateCatalog::new();
        for t in templates {
            catalog.intern(t);
        }
        catalog
    }

    /// Intern one template, returning its id. The template joins its
    /// family list according to its [`WorkloadKind`].
    pub fn intern(&mut self, template: QueryTemplate) -> TemplateId {
        assert!(
            self.templates.len() < u32::MAX as usize,
            "template catalog exhausted the u32 id space"
        );
        debug_assert!(
            self.by_name(&template.name).is_none(),
            "template {:?} interned twice",
            template.name
        );
        let id = TemplateId(self.templates.len() as u32);
        match template.kind {
            WorkloadKind::Sales => self.sales.push(id),
            WorkloadKind::TpchLike => self.tpch.push(id),
            WorkloadKind::Oltp => self.oltp.push(id),
        }
        self.templates.push(template);
        id
    }

    /// The interned template for `id`.
    pub fn get(&self, id: TemplateId) -> &QueryTemplate {
        &self.templates[id.index()]
    }

    /// The template's name (convenience for reporting).
    pub fn name(&self, id: TemplateId) -> &str {
        &self.get(id).name
    }

    /// The template's SQL text.
    pub fn sql(&self, id: TemplateId) -> &str {
        &self.get(id).sql
    }

    /// Find a template id by name (linear scan; reporting paths only).
    pub fn by_name(&self, name: &str) -> Option<TemplateId> {
        self.templates
            .iter()
            .position(|t| t.name == name)
            .map(|i| TemplateId(i as u32))
    }

    /// SALES-family ids, in interning order.
    pub fn sales(&self) -> &[TemplateId] {
        &self.sales
    }

    /// TPC-H-like-family ids, in interning order.
    pub fn tpch(&self) -> &[TemplateId] {
        &self.tpch
    }

    /// OLTP-family ids, in interning order.
    pub fn oltp(&self) -> &[TemplateId] {
        &self.oltp
    }

    /// Number of interned templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Iterate `(id, template)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (TemplateId, &QueryTemplate)> {
        self.templates
            .iter()
            .enumerate()
            .map(|(i, t)| (TemplateId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{oltp_templates, sales_templates, tpch_like_templates};

    fn full_catalog() -> TemplateCatalog {
        TemplateCatalog::from_templates(
            sales_templates()
                .into_iter()
                .chain(tpch_like_templates())
                .chain(oltp_templates()),
        )
    }

    #[test]
    fn interning_assigns_dense_ids_in_order() {
        let c = full_catalog();
        assert_eq!(c.len(), 20);
        for (i, (id, _)) in c.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn family_lists_partition_the_catalog() {
        let c = full_catalog();
        assert_eq!(c.sales().len(), 10);
        assert_eq!(c.tpch().len(), 6);
        assert_eq!(c.oltp().len(), 4);
        assert_eq!(c.sales().len() + c.tpch().len() + c.oltp().len(), c.len());
        for &id in c.sales() {
            assert_eq!(c.get(id).kind, WorkloadKind::Sales);
        }
        for &id in c.oltp() {
            assert_eq!(c.get(id).kind, WorkloadKind::Oltp);
        }
    }

    #[test]
    fn by_name_round_trips() {
        let c = full_catalog();
        for (id, t) in c.iter() {
            assert_eq!(c.by_name(&t.name), Some(id));
            assert_eq!(c.name(id), t.name);
            assert_eq!(c.sql(id), t.sql);
        }
        assert_eq!(c.by_name("no_such_template"), None);
    }

    #[test]
    fn ids_are_tiny_and_copyable() {
        assert_eq!(std::mem::size_of::<TemplateId>(), 4);
        let c = full_catalog();
        let id = c.sales()[0];
        let copy = id;
        assert_eq!(id, copy);
    }
}
