//! # throttledb-workload
//!
//! The workloads of the paper's evaluation (§5):
//!
//! * [`templates::sales_templates`] — the **SALES benchmark**: 10 complex
//!   decision-support query templates over the star-schema warehouse, each
//!   joining the fact table to 14–19 dimensions and aggregating over the
//!   join result, mirroring the published description ("the 'average' query
//!   contains between 15 and 20 joins and computes aggregate(s) on the join
//!   results").
//! * [`templates::tpch_like_templates`] — a TPC-H-like comparison set with
//!   0–8 joins, used for the compile-memory-magnitude comparison.
//! * [`templates::oltp_templates`] — small point/diagnostic queries that the
//!   first gateway threshold exempts.
//! * [`uniquify`] — the load generator's trick of editing each base query
//!   before submission "to make it appear unique and to defeat plan-caching
//!   features in the DBMS".
//! * [`client`] — the closed-loop client model (think time, retry behaviour)
//!   used by the discrete-event engine.
//! * [`mix`] — workload-mix sampling across the three template families,
//!   the knob the scenario subsystem turns per phase.
//! * [`catalog`] — the template intern table: every template gets a compact
//!   [`TemplateId`] so the engine's hot path moves 4-byte ids instead of
//!   cloned SQL strings.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod client;
pub mod mix;
pub mod templates;
pub mod uniquify;

pub use catalog::{TemplateCatalog, TemplateId};
pub use client::ClientModel;
pub use mix::WorkloadMix;
pub use templates::{
    oltp_templates, sales_templates, tpch_like_templates, QueryTemplate, WorkloadKind,
};
pub use uniquify::{fnv1a_64, Fnv64, Uniquifier};
