//! The load generator's query uniquifier.
//!
//! §5.1: "To simulate the large number of unique query compilations, our
//! load generator modifies each base query before it is submitted to the
//! database server to make it appear unique and to defeat plan-caching
//! features in the DBMS." We do the same: parse the template, perturb every
//! numeric literal by a small deterministic amount drawn from the client's
//! RNG, and re-render. The result is semantically near-identical but textually
//! unique, so a text-keyed plan cache always misses.

use throttledb_sim::SimRng;
use throttledb_sqlparse::{parse, Expr, Literal, SelectStatement};

/// Rewrites query templates into unique instances.
#[derive(Debug, Default, Clone, Copy)]
pub struct Uniquifier;

impl Uniquifier {
    /// Create a uniquifier.
    pub fn new() -> Self {
        Uniquifier
    }

    /// Produce a unique instance of `template_sql`, using `rng` for the
    /// perturbations and `submission_id` as a guaranteed-unique tag.
    ///
    /// Panics if the template does not parse — templates are static assets
    /// and a non-parsing one is a bug, not an input condition.
    ///
    /// # Examples
    ///
    /// ```
    /// use throttledb_sim::SimRng;
    /// use throttledb_workload::Uniquifier;
    ///
    /// let template = "SELECT a FROM t WHERE b > 100 LIMIT 5";
    /// let mut rng = SimRng::seed_from_u64(7);
    /// let uniquifier = Uniquifier::new();
    ///
    /// // Two submissions of the same template differ textually (so a
    /// // text-keyed plan cache misses) but stay semantically close: the
    /// // numeric literals are nudged by at most a few percent.
    /// let first = uniquifier.uniquify(template, &mut rng, 0);
    /// let second = uniquifier.uniquify(template, &mut rng, 1);
    /// assert_ne!(first, second);
    /// assert!(first.contains("WHERE"));
    /// ```
    pub fn uniquify(&self, template_sql: &str, rng: &mut SimRng, submission_id: u64) -> String {
        let mut stmt = parse(template_sql).expect("workload templates must parse");
        perturb_statement(&mut stmt, rng);
        // A trailing comment-free LIMIT-preserving tag is risky to express in
        // the SQL subset, so uniqueness is guaranteed by literal perturbation
        // plus, as a last resort, an extra predicate that is always true.
        let mut text = stmt.to_string();
        if text == template_sql {
            text.push_str(&format!(" LIMIT {}", 1_000_000 + submission_id % 1_000));
        }
        text
    }
}

/// Walk the statement and nudge every numeric literal.
fn perturb_statement(stmt: &mut SelectStatement, rng: &mut SimRng) {
    for item in &mut stmt.items {
        perturb_expr(&mut item.expr, rng);
    }
    for join in &mut stmt.joins {
        perturb_expr(&mut join.on, rng);
    }
    if let Some(w) = &mut stmt.where_clause {
        perturb_expr(w, rng);
    }
    for g in &mut stmt.group_by {
        perturb_expr(g, rng);
    }
    if let Some(h) = &mut stmt.having {
        perturb_expr(h, rng);
    }
    for o in &mut stmt.order_by {
        perturb_expr(&mut o.expr, rng);
    }
}

fn perturb_expr(expr: &mut Expr, rng: &mut SimRng) {
    match expr {
        Expr::Literal(Literal::Number(n)) => {
            // Nudge by up to ±3% (at least ±1) so selectivities stay close to
            // the template's but the text is unique.
            let magnitude = (n.abs() * 0.03).max(1.0);
            let delta = rng.uniform_f64(0.0, magnitude * 2.0) - magnitude;
            *n = (*n + delta).round();
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::Wildcard => {}
        Expr::Binary { left, right, .. } => {
            perturb_expr(left, rng);
            perturb_expr(right, rng);
        }
        Expr::Unary { expr, .. } => perturb_expr(expr, rng),
        Expr::Aggregate { arg, .. } => perturb_expr(arg, rng),
        Expr::InList { expr, list, .. } => {
            perturb_expr(expr, rng);
            for e in list {
                perturb_expr(e, rng);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            perturb_expr(expr, rng);
            perturb_expr(low, rng);
            perturb_expr(high, rng);
        }
        Expr::IsNull { expr, .. } => perturb_expr(expr, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{sales_templates, tpch_like_templates};
    use std::collections::HashSet;

    #[test]
    fn uniquified_queries_still_parse() {
        let u = Uniquifier::new();
        let mut rng = SimRng::seed_from_u64(7);
        for t in sales_templates().iter().chain(tpch_like_templates().iter()) {
            let unique = u.uniquify(&t.sql, &mut rng, 1);
            parse(&unique).unwrap_or_else(|e| panic!("{} uniquified does not parse: {e}", t.name));
        }
    }

    #[test]
    fn repeated_submissions_are_textually_distinct() {
        let u = Uniquifier::new();
        let mut rng = SimRng::seed_from_u64(11);
        let template = &sales_templates()[0].sql;
        let mut seen = HashSet::new();
        for i in 0..100 {
            seen.insert(u.uniquify(template, &mut rng, i));
        }
        assert!(
            seen.len() >= 95,
            "at least 95/100 submissions should be unique, got {}",
            seen.len()
        );
    }

    #[test]
    fn structure_is_preserved() {
        let u = Uniquifier::new();
        let mut rng = SimRng::seed_from_u64(13);
        let template = &sales_templates()[2].sql;
        let base = parse(template).unwrap();
        let unique = parse(&u.uniquify(template, &mut rng, 0)).unwrap();
        assert_eq!(base.join_count(), unique.join_count());
        assert_eq!(base.items.len(), unique.items.len());
        assert_eq!(base.group_by.len(), unique.group_by.len());
    }

    #[test]
    fn is_deterministic_per_seed() {
        let u = Uniquifier::new();
        let template = &tpch_like_templates()[1].sql;
        let a = u.uniquify(template, &mut SimRng::seed_from_u64(5), 3);
        let b = u.uniquify(template, &mut SimRng::seed_from_u64(5), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn literal_free_query_still_becomes_unique() {
        let u = Uniquifier::new();
        let mut rng = SimRng::seed_from_u64(17);
        let sql = "SELECT a FROM t";
        let one = u.uniquify(sql, &mut rng, 1);
        let two = u.uniquify(sql, &mut rng, 2);
        assert_ne!(one, sql);
        assert_ne!(one, two);
        parse(&one).unwrap();
    }
}
