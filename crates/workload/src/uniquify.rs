//! The load generator's query uniquifier.
//!
//! §5.1: "To simulate the large number of unique query compilations, our
//! load generator modifies each base query before it is submitted to the
//! database server to make it appear unique and to defeat plan-caching
//! features in the DBMS." We do the same: parse the template, perturb every
//! numeric literal by a small deterministic amount drawn from the client's
//! RNG, and re-render. The result is semantically near-identical but textually
//! unique, so a text-keyed plan cache always misses.
//!
//! Two entry points share the exact same RNG draws and rendered bytes:
//!
//! * [`Uniquifier::uniquify`] — parse, perturb, render to a fresh `String`
//!   (the original API; tests and one-off callers);
//! * [`Uniquifier::uniquify_digest`] — the engine's hot path: perturbs a
//!   *cached* parse of the template in place (resetting literals from a
//!   snapshot first), renders into a reused buffer, and returns only the
//!   64-bit FNV-1a digest of the text. After the first submission of each
//!   template this allocates nothing, while producing bit-for-bit the same
//!   RNG stream — and therefore the same simulation — as the allocating
//!   path.

use crate::catalog::TemplateId;
use std::fmt::Write as _;
use throttledb_sim::SimRng;
use throttledb_sqlparse::{parse, Literal, SelectStatement};

/// 64-bit FNV-1a over `bytes` — the digest the engine keys its plan-cache
/// lookups on (cheap, stable, and good enough for a cache that is designed
/// to miss).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = Fnv64::new();
    hash.update(bytes);
    hash.finish()
}

/// Incremental 64-bit FNV-1a: the streaming counterpart of [`fnv1a_64`]
/// (`Fnv64::new().update(b).finish() == fnv1a_64(b)` for any byte split).
/// The trace plane folds every encoded frame through one of these so a
/// multi-gigabyte trace gets a digest without ever being materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the FNV offset basis (the empty-input digest).
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Fold `bytes` into the running digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for b in bytes {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash;
    }

    /// The digest of everything folded so far (the hasher stays usable).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// A template parsed once, with a snapshot of its numeric literals so each
/// submission can re-perturb from the original values.
#[derive(Debug, Clone)]
struct Prepared {
    stmt: SelectStatement,
    /// Original numeric-literal values in visitor order.
    originals: Vec<f64>,
}

impl Prepared {
    fn new(sql: &str) -> Prepared {
        let mut stmt = parse(sql).expect("workload templates must parse");
        let mut originals = Vec::new();
        stmt.for_each_literal_mut(&mut |lit| {
            if let Literal::Number(n) = lit {
                originals.push(*n);
            }
        });
        Prepared { stmt, originals }
    }
}

/// Rewrites query templates into unique instances.
#[derive(Debug, Default, Clone)]
pub struct Uniquifier {
    /// Cached parses, indexed by [`TemplateId`].
    prepared: Vec<Option<Prepared>>,
    /// Reused render buffer for the digest path.
    buf: String,
}

impl Uniquifier {
    /// Create a uniquifier.
    pub fn new() -> Self {
        Uniquifier::default()
    }

    /// Produce a unique instance of `template_sql`, using `rng` for the
    /// perturbations and `submission_id` as a guaranteed-unique tag.
    ///
    /// Panics if the template does not parse — templates are static assets
    /// and a non-parsing one is a bug, not an input condition.
    ///
    /// # Examples
    ///
    /// ```
    /// use throttledb_sim::SimRng;
    /// use throttledb_workload::Uniquifier;
    ///
    /// let template = "SELECT a FROM t WHERE b > 100 LIMIT 5";
    /// let mut rng = SimRng::seed_from_u64(7);
    /// let uniquifier = Uniquifier::new();
    ///
    /// // Two submissions of the same template differ textually (so a
    /// // text-keyed plan cache misses) but stay semantically close: the
    /// // numeric literals are nudged by at most a few percent.
    /// let first = uniquifier.uniquify(template, &mut rng, 0);
    /// let second = uniquifier.uniquify(template, &mut rng, 1);
    /// assert_ne!(first, second);
    /// assert!(first.contains("WHERE"));
    /// ```
    pub fn uniquify(&self, template_sql: &str, rng: &mut SimRng, submission_id: u64) -> String {
        let mut stmt = parse(template_sql).expect("workload templates must parse");
        stmt.for_each_literal_mut(&mut |lit| perturb_literal(lit, rng));
        // A trailing comment-free LIMIT-preserving tag is risky to express in
        // the SQL subset, so uniqueness is guaranteed by literal perturbation
        // plus, as a last resort, an extra predicate that is always true.
        let mut text = stmt.to_string();
        if text == template_sql {
            let _ = write!(text, " LIMIT {}", 1_000_000 + submission_id % 1_000);
        }
        text
    }

    /// Allocation-free variant for the engine's submission path: perturb
    /// the cached parse of template `id` (whose text is `template_sql`),
    /// and return the FNV-1a digest of the uniquified SQL instead of the
    /// text itself.
    ///
    /// Consumes exactly the RNG draws of [`Uniquifier::uniquify`] and
    /// digests exactly the bytes it would have produced (verified by test),
    /// so swapping the engine onto this path changes no simulation outcome.
    pub fn uniquify_digest(
        &mut self,
        id: TemplateId,
        template_sql: &str,
        rng: &mut SimRng,
        submission_id: u64,
    ) -> u64 {
        let slot = id.index();
        if slot >= self.prepared.len() {
            self.prepared.resize_with(slot + 1, || None);
        }
        let prepared = self.prepared[slot].get_or_insert_with(|| Prepared::new(template_sql));
        // Reset each literal to the template's original value and perturb it
        // in one pass — the same visit order, and therefore the same RNG
        // draws, as perturbing a fresh parse.
        let originals = &prepared.originals;
        let mut i = 0;
        prepared.stmt.for_each_literal_mut(&mut |lit| {
            if let Literal::Number(n) = lit {
                *n = originals[i];
                i += 1;
            }
            perturb_literal(lit, rng);
        });
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        let _ = write!(buf, "{}", prepared.stmt);
        if buf == template_sql {
            let _ = write!(buf, " LIMIT {}", 1_000_000 + submission_id % 1_000);
        }
        let digest = fnv1a_64(buf.as_bytes());
        self.buf = buf;
        digest
    }
}

/// Nudge a numeric literal by up to ±3% (at least ±1) so selectivities stay
/// close to the template's but the text is unique.
fn perturb_literal(lit: &mut Literal, rng: &mut SimRng) {
    if let Literal::Number(n) = lit {
        let magnitude = (n.abs() * 0.03).max(1.0);
        let delta = rng.uniform_f64(0.0, magnitude * 2.0) - magnitude;
        *n = (*n + delta).round();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TemplateCatalog;
    use crate::templates::{oltp_templates, sales_templates, tpch_like_templates};
    use std::collections::HashSet;

    #[test]
    fn uniquified_queries_still_parse() {
        let u = Uniquifier::new();
        let mut rng = SimRng::seed_from_u64(7);
        for t in sales_templates().iter().chain(tpch_like_templates().iter()) {
            let unique = u.uniquify(&t.sql, &mut rng, 1);
            parse(&unique).unwrap_or_else(|e| panic!("{} uniquified does not parse: {e}", t.name));
        }
    }

    #[test]
    fn repeated_submissions_are_textually_distinct() {
        let u = Uniquifier::new();
        let mut rng = SimRng::seed_from_u64(11);
        let template = &sales_templates()[0].sql;
        let mut seen = HashSet::new();
        for i in 0..100 {
            seen.insert(u.uniquify(template, &mut rng, i));
        }
        assert!(
            seen.len() >= 95,
            "at least 95/100 submissions should be unique, got {}",
            seen.len()
        );
    }

    #[test]
    fn structure_is_preserved() {
        let u = Uniquifier::new();
        let mut rng = SimRng::seed_from_u64(13);
        let template = &sales_templates()[2].sql;
        let base = parse(template).unwrap();
        let unique = parse(&u.uniquify(template, &mut rng, 0)).unwrap();
        assert_eq!(base.join_count(), unique.join_count());
        assert_eq!(base.items.len(), unique.items.len());
        assert_eq!(base.group_by.len(), unique.group_by.len());
    }

    #[test]
    fn is_deterministic_per_seed() {
        let u = Uniquifier::new();
        let template = &tpch_like_templates()[1].sql;
        let a = u.uniquify(template, &mut SimRng::seed_from_u64(5), 3);
        let b = u.uniquify(template, &mut SimRng::seed_from_u64(5), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn literal_free_query_still_becomes_unique() {
        let u = Uniquifier::new();
        let mut rng = SimRng::seed_from_u64(17);
        let sql = "SELECT a FROM t";
        let one = u.uniquify(sql, &mut rng, 1);
        let two = u.uniquify(sql, &mut rng, 2);
        assert_ne!(one, sql);
        assert_ne!(one, two);
        parse(&one).unwrap();
    }

    #[test]
    fn digest_path_matches_the_allocating_path_exactly() {
        // The hot path must consume the same RNG draws and digest the same
        // bytes as the allocating path, template by template, submission by
        // submission — this equality is what lets the engine switch paths
        // without perturbing any seeded experiment.
        let catalog = TemplateCatalog::from_templates(
            sales_templates()
                .into_iter()
                .chain(tpch_like_templates())
                .chain(oltp_templates()),
        );
        let reference = Uniquifier::new();
        let mut hot = Uniquifier::new();
        let mut rng_a = SimRng::seed_from_u64(23);
        let mut rng_b = SimRng::seed_from_u64(23);
        for round in 0..5u64 {
            for (id, t) in catalog.iter() {
                let sub = round * 100 + id.index() as u64;
                let text = reference.uniquify(&t.sql, &mut rng_a, sub);
                let digest = hot.uniquify_digest(id, &t.sql, &mut rng_b, sub);
                assert_eq!(
                    digest,
                    fnv1a_64(text.as_bytes()),
                    "digest mismatch for {} round {round}",
                    t.name
                );
            }
        }
        // And the RNG streams stayed in lockstep throughout.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn digest_path_tags_literal_free_templates() {
        let mut catalog = TemplateCatalog::new();
        let id = catalog.intern(crate::templates::QueryTemplate {
            name: "bare".into(),
            kind: crate::templates::WorkloadKind::Oltp,
            sql: "SELECT a FROM t".into(),
        });
        let mut u = Uniquifier::new();
        let mut rng = SimRng::seed_from_u64(29);
        let d1 = u.uniquify_digest(id, catalog.sql(id), &mut rng, 1);
        let d2 = u.uniquify_digest(id, catalog.sql(id), &mut rng, 2);
        assert_ne!(d1, d2, "the LIMIT tag must keep literal-free SQL unique");
        assert_ne!(d1, fnv1a_64(b"SELECT a FROM t"));
    }

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"abc"), fnv1a_64(b"abc"));
        assert_ne!(fnv1a_64(b"abc"), fnv1a_64(b"abd"));
        // The incremental hasher matches the one-shot function for any
        // split of the input.
        let text = b"throttledb-trace v2 streams its digest";
        for split in 0..=text.len() {
            let mut h = Fnv64::new();
            h.update(&text[..split]);
            h.update(&text[split..]);
            assert_eq!(h.finish(), fnv1a_64(text), "split at {split}");
        }
    }
}
