//! Query templates for the SALES, TPC-H-like and OLTP workloads.

use serde::{Deserialize, Serialize};

/// Which workload a template belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The paper's SALES decision-support benchmark.
    Sales,
    /// The TPC-H-like comparison workload.
    TpchLike,
    /// Small OLTP / diagnostic queries.
    Oltp,
}

/// One parameterized query template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// Template name (e.g. "sales_q3").
    pub name: String,
    /// Workload it belongs to.
    pub kind: WorkloadKind,
    /// The SQL text with concrete default literals (the uniquifier rewrites
    /// them per submission).
    pub sql: String,
}

/// The dimensions a SALES template can join, as
/// `(dimension table, fact FK column, dimension key column)`.
const SALES_DIMS: &[(&str, &str, &str)] = &[
    ("dim_product", "product_id", "product_key"),
    ("dim_customer", "customer_id", "customer_key"),
    ("dim_store", "store_id", "store_key"),
    ("dim_date", "date_id", "date_key"),
    ("dim_promotion", "promotion_id", "promotion_key"),
    ("dim_channel", "channel_id", "channel_key"),
    ("dim_currency", "currency_id", "currency_key"),
    ("dim_salesrep", "salesrep_id", "salesrep_key"),
    ("dim_shipmode", "shipmode_id", "shipmode_key"),
    ("dim_warehouse", "warehouse_id", "warehouse_key"),
    ("dim_region", "region_id", "region_key"),
    ("dim_category", "category_id", "category_key"),
    ("dim_brand", "brand_id", "brand_key"),
    ("dim_supplier", "supplier_id", "supplier_key"),
    ("dim_payment", "payment_id", "payment_key"),
    ("dim_segment", "segment_id", "segment_key"),
    ("dim_campaign", "campaign_id", "campaign_key"),
    ("dim_returnreason", "returnreason_id", "returnreason_key"),
    // A snowflake-style extra hop: the sales-rep key also resolves against
    // the employee dimension, which is how the widest SALES queries reach
    // 19-20 joins without repeating a dimension.
    ("dim_employee", "salesrep_id", "employee_key"),
];

/// Build one SALES-style query joining the fact table to `join_count`
/// dimensions, with the given aggregate target, group-by column and a
/// filter literal.
fn sales_query(
    name: &str,
    join_count: usize,
    measure: &str,
    group_dim: &str,
    group_col: &str,
    filter_literal: u64,
) -> QueryTemplate {
    assert!(join_count <= SALES_DIMS.len());
    let mut sql = format!(
        "SELECT {group_dim}.{group_col}, SUM(f.{measure}) AS total, COUNT(*) AS n, AVG(f.unit_price) AS avg_price \
         FROM fact_sales f"
    );
    let mut joined_group_dim = false;
    for (table, fk, key) in SALES_DIMS.iter().take(join_count) {
        sql.push_str(&format!(" JOIN {table} ON f.{fk} = {table}.{key}"));
        if *table == group_dim {
            joined_group_dim = true;
        }
    }
    if !joined_group_dim {
        // Make sure the grouping dimension is part of the join graph.
        let (table, fk, key) = SALES_DIMS
            .iter()
            .find(|(t, _, _)| *t == group_dim)
            .expect("group dimension exists");
        sql.push_str(&format!(" JOIN {table} ON f.{fk} = {table}.{key}"));
    }
    sql.push_str(&format!(
        " WHERE f.quantity > 2 AND f.net_amount BETWEEN 10 AND 900000 \
          AND dim_date.calendar_year IN (5, 6, 7) AND f.order_date > {filter_literal} \
          GROUP BY {group_dim}.{group_col} \
          ORDER BY total DESC LIMIT 500"
    ));
    QueryTemplate {
        name: name.to_string(),
        kind: WorkloadKind::Sales,
        sql,
    }
}

/// The 10 SALES benchmark templates (§5.1: "10 complex queries that are
/// representative of the workload", 15–20 joins each).
pub fn sales_templates() -> Vec<QueryTemplate> {
    vec![
        sales_query(
            "sales_q01",
            15,
            "net_amount",
            "dim_date",
            "calendar_year",
            900,
        ),
        sales_query(
            "sales_q02",
            16,
            "net_amount",
            "dim_store",
            "region_id",
            1200,
        ),
        sales_query(
            "sales_q03",
            17,
            "cost_amount",
            "dim_product",
            "category_id",
            300,
        ),
        sales_query(
            "sales_q04",
            18,
            "net_amount",
            "dim_region",
            "continent",
            2100,
        ),
        sales_query(
            "sales_q05",
            19,
            "quantity",
            "dim_customer",
            "segment_id",
            750,
        ),
        sales_query(
            "sales_q06",
            15,
            "discount",
            "dim_channel",
            "channel_name",
            60,
        ),
        sales_query(
            "sales_q07",
            16,
            "net_amount",
            "dim_supplier",
            "country",
            1800,
        ),
        sales_query(
            "sales_q08",
            17,
            "cost_amount",
            "dim_brand",
            "manufacturer",
            450,
        ),
        sales_query(
            "sales_q09",
            18,
            "net_amount",
            "dim_campaign",
            "start_year",
            2600,
        ),
        sales_query(
            "sales_q10",
            19,
            "quantity",
            "dim_warehouse",
            "region_id",
            1500,
        ),
    ]
}

/// A handful of TPC-H-like templates, 0–8 joins (the paper's comparison
/// point: "TPC-H queries contain between 0 and 8 joins").
pub fn tpch_like_templates() -> Vec<QueryTemplate> {
    let q = |name: &str, sql: &str| QueryTemplate {
        name: name.to_string(),
        kind: WorkloadKind::TpchLike,
        sql: sql.to_string(),
    };
    vec![
        q(
            "tpch_q1_like",
            "SELECT l.l_returnflag, l.l_linestatus, SUM(l.l_quantity) AS sum_qty, \
             SUM(l.l_extendedprice) AS sum_price, COUNT(*) AS n \
             FROM lineitem l WHERE l.l_shipdate <= 2500 \
             GROUP BY l.l_returnflag, l.l_linestatus ORDER BY sum_qty DESC",
        ),
        q(
            "tpch_q3_like",
            "SELECT o.o_orderkey, SUM(l.l_extendedprice) AS revenue \
             FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey \
             JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
             WHERE c.c_mktsegment = 'BUILDING' AND o.o_orderdate < 2000 \
             GROUP BY o.o_orderkey ORDER BY revenue DESC LIMIT 10",
        ),
        q(
            "tpch_q5_like",
            "SELECT n.n_name, SUM(l.l_extendedprice) AS revenue \
             FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey \
             JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
             JOIN supplier s ON l.l_suppkey = s.s_suppkey \
             JOIN nation n ON s.s_nationkey = n.n_nationkey \
             JOIN region r ON n.n_regionkey = r.r_regionkey \
             WHERE o.o_orderdate BETWEEN 100 AND 465 \
             GROUP BY n.n_name ORDER BY revenue DESC",
        ),
        q(
            "tpch_q9_like",
            "SELECT n.n_name, SUM(l.l_extendedprice) AS profit \
             FROM part p JOIN lineitem l ON p.p_partkey = l.l_partkey \
             JOIN partsupp ps ON l.l_partkey = ps.ps_partkey \
             JOIN supplier s ON l.l_suppkey = s.s_suppkey \
             JOIN orders o ON l.l_orderkey = o.o_orderkey \
             JOIN nation n ON s.s_nationkey = n.n_nationkey \
             WHERE p.p_size > 10 \
             GROUP BY n.n_name",
        ),
        q(
            "tpch_q6_like",
            "SELECT SUM(l.l_extendedprice) AS revenue FROM lineitem l \
             WHERE l.l_shipdate BETWEEN 100 AND 465 AND l.l_discount BETWEEN 100 AND 300 \
             AND l.l_quantity < 24000",
        ),
        q(
            "tpch_q10_like",
            "SELECT c.c_custkey, SUM(l.l_extendedprice) AS revenue \
             FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey \
             JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
             JOIN nation n ON c.c_nationkey = n.n_nationkey \
             WHERE l.l_returnflag = 'R' GROUP BY c.c_custkey ORDER BY revenue DESC LIMIT 20",
        ),
    ]
}

/// Small OLTP / diagnostic queries: the category the exemption floor and the
/// first gateway protect.
pub fn oltp_templates() -> Vec<QueryTemplate> {
    let q = |name: &str, sql: &str| QueryTemplate {
        name: name.to_string(),
        kind: WorkloadKind::Oltp,
        sql: sql.to_string(),
    };
    vec![
        q(
            "oltp_point_sale",
            "SELECT f.net_amount FROM fact_sales f WHERE f.sale_id = 1234567",
        ),
        q(
            "oltp_customer_lookup",
            "SELECT c.customer_name FROM dim_customer c WHERE c.customer_key = 98765",
        ),
        q(
            "oltp_store_join",
            "SELECT s.store_name, r.region_name FROM dim_store s \
             JOIN dim_region r ON s.region_id = r.region_key WHERE s.store_key = 42",
        ),
        q(
            "diag_count_recent",
            "SELECT COUNT(*) FROM fact_sales f WHERE f.date_id = 3000",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use throttledb_catalog::{sales_schema, tpch_schema, SalesScale};
    use throttledb_optimizer::Binder;
    use throttledb_sqlparse::parse;

    #[test]
    fn there_are_exactly_ten_sales_templates() {
        let t = sales_templates();
        assert_eq!(t.len(), 10);
        assert!(t.iter().all(|q| q.kind == WorkloadKind::Sales));
    }

    #[test]
    fn sales_templates_have_15_to_20_joins_and_aggregate() {
        for t in sales_templates() {
            let stmt = parse(&t.sql).unwrap_or_else(|e| panic!("{} does not parse: {e}", t.name));
            let joins = stmt.join_count();
            assert!(
                (15..=20).contains(&joins),
                "{} has {joins} joins, expected 15-20",
                t.name
            );
            assert!(stmt.is_aggregation(), "{} must aggregate", t.name);
        }
    }

    #[test]
    fn sales_templates_bind_against_the_sales_schema() {
        let cat = sales_schema(SalesScale::tiny());
        let binder = Binder::new(&cat);
        for t in sales_templates() {
            let stmt = parse(&t.sql).unwrap();
            binder
                .bind(&stmt)
                .unwrap_or_else(|e| panic!("{} does not bind: {e}", t.name));
        }
    }

    #[test]
    fn tpch_templates_have_0_to_8_joins_and_bind() {
        let cat = tpch_schema(1.0);
        let binder = Binder::new(&cat);
        for t in tpch_like_templates() {
            let stmt = parse(&t.sql).unwrap_or_else(|e| panic!("{} does not parse: {e}", t.name));
            assert!(stmt.join_count() <= 8, "{} has too many joins", t.name);
            binder
                .bind(&stmt)
                .unwrap_or_else(|e| panic!("{} does not bind: {e}", t.name));
        }
    }

    #[test]
    fn oltp_templates_are_tiny_and_bind_against_sales_schema() {
        let cat = sales_schema(SalesScale::tiny());
        let binder = Binder::new(&cat);
        for t in oltp_templates() {
            let stmt = parse(&t.sql).unwrap();
            assert!(
                stmt.table_count() <= 2,
                "{} should touch at most 2 tables",
                t.name
            );
            binder
                .bind(&stmt)
                .unwrap_or_else(|e| panic!("{}: {e}", t.name));
        }
    }

    #[test]
    fn template_names_are_unique() {
        let mut names: Vec<String> = sales_templates()
            .into_iter()
            .chain(tpch_like_templates())
            .chain(oltp_templates())
            .map(|t| t.name)
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
