//! Workload mix sampling: what fraction of submissions each template
//! family receives.
//!
//! The paper's evaluation runs one fixed blend (SALES decision-support
//! queries with a sliver of OLTP/diagnostic traffic). The scenario
//! subsystem generalizes that: every phase of a scenario binds a
//! [`WorkloadMix`] — fractions over the SALES, TPC-H-like and OLTP
//! template families — and the engine samples the family of each
//! submission from the active mix. Sampling consumes exactly one RNG draw
//! whenever more than one family is available, so changing a fraction
//! (without changing availability) never shifts the RNG stream consumed
//! by unrelated decisions.

use crate::templates::WorkloadKind;
use serde::{Deserialize, Serialize};
use throttledb_sim::SimRng;

/// Fractions of submissions drawn from each workload family.
///
/// Fractions are weights: they are normalized at sampling time, so any
/// non-negative values with a positive sum are valid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Weight of the SALES decision-support templates.
    pub sales: f64,
    /// Weight of the TPC-H-like comparison templates.
    pub tpch_like: f64,
    /// Weight of the small OLTP/diagnostic templates.
    pub oltp: f64,
}

impl WorkloadMix {
    /// A mix with the given family weights (normalized when sampling).
    pub fn new(sales: f64, tpch_like: f64, oltp: f64) -> Self {
        let mix = WorkloadMix {
            sales,
            tpch_like,
            oltp,
        };
        mix.validate();
        mix
    }

    /// Only SALES queries (the compile-storm phases use this).
    pub fn sales_only() -> Self {
        WorkloadMix {
            sales: 1.0,
            tpch_like: 0.0,
            oltp: 0.0,
        }
    }

    /// The paper's §5 blend: SALES plus `oltp_fraction` of OLTP/diagnostic
    /// traffic, no TPC-H-like queries.
    pub fn paper_default(oltp_fraction: f64) -> Self {
        WorkloadMix {
            sales: (1.0 - oltp_fraction).max(0.0),
            tpch_like: 0.0,
            oltp: oltp_fraction,
        }
    }

    /// Panics on negative weights or an all-zero mix.
    pub fn validate(&self) {
        assert!(
            self.sales >= 0.0 && self.tpch_like >= 0.0 && self.oltp >= 0.0,
            "workload mix weights must be non-negative"
        );
        assert!(
            self.sales + self.tpch_like + self.oltp > 0.0,
            "workload mix needs positive total weight"
        );
    }

    /// Sample the family of one submission.
    ///
    /// `have_tpch` / `have_oltp` say whether those template sets are
    /// available; an unavailable family's weight folds into SALES. One
    /// uniform draw is consumed iff at least one non-SALES family is
    /// available (matching the historical single `oltp_fraction` draw, so
    /// seeded runs stay reproducible across the mix generalization).
    pub fn sample(&self, rng: &mut SimRng, have_tpch: bool, have_oltp: bool) -> WorkloadKind {
        if !have_tpch && !have_oltp {
            return WorkloadKind::Sales;
        }
        let total = self.sales + self.tpch_like + self.oltp;
        let f_oltp = if have_oltp { self.oltp / total } else { 0.0 };
        let f_tpch = if have_tpch {
            self.tpch_like / total
        } else {
            0.0
        };
        let u = rng.unit();
        if have_oltp && u < f_oltp {
            WorkloadKind::Oltp
        } else if have_tpch && u < f_oltp + f_tpch {
            WorkloadKind::TpchLike
        } else {
            WorkloadKind::Sales
        }
    }
}

impl Default for WorkloadMix {
    fn default() -> Self {
        WorkloadMix::paper_default(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_papers_blend() {
        let m = WorkloadMix::default();
        assert!((m.sales - 0.95).abs() < 1e-12);
        assert_eq!(m.tpch_like, 0.0);
        assert!((m.oltp - 0.05).abs() < 1e-12);
        m.validate();
    }

    #[test]
    fn sample_respects_the_fractions() {
        let m = WorkloadMix::new(0.5, 0.3, 0.2);
        let mut rng = SimRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            match m.sample(&mut rng, true, true) {
                WorkloadKind::Sales => counts[0] += 1,
                WorkloadKind::TpchLike => counts[1] += 1,
                WorkloadKind::Oltp => counts[2] += 1,
            }
        }
        assert!((4_700..5_300).contains(&counts[0]), "sales {}", counts[0]);
        assert!((2_700..3_300).contains(&counts[1]), "tpch {}", counts[1]);
        assert!((1_700..2_300).contains(&counts[2]), "oltp {}", counts[2]);
    }

    #[test]
    fn unavailable_families_fold_into_sales() {
        let m = WorkloadMix::new(0.1, 0.6, 0.3);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..200 {
            assert_eq!(m.sample(&mut rng, false, false), WorkloadKind::Sales);
        }
        // With only OLTP available, TPC-H weight folds into SALES.
        for _ in 0..2_000 {
            assert_ne!(m.sample(&mut rng, false, true), WorkloadKind::TpchLike);
        }
    }

    #[test]
    fn sampling_draw_count_depends_only_on_availability() {
        // Two mixes with different fractions must consume the same number of
        // draws, so phase-mix changes do not shift unrelated RNG streams.
        let a = WorkloadMix::new(0.9, 0.0, 0.1);
        let b = WorkloadMix::new(0.2, 0.5, 0.3);
        let mut rng_a = SimRng::seed_from_u64(7);
        let mut rng_b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            a.sample(&mut rng_a, true, true);
            b.sample(&mut rng_b, true, true);
        }
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn all_zero_mix_rejected() {
        WorkloadMix::new(0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        WorkloadMix::new(-0.1, 0.6, 0.5);
    }
}
