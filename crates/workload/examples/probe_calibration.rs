use std::time::Instant;
use throttledb_catalog::tpch_schema;
use throttledb_catalog::{sales_schema, SalesScale};
use throttledb_optimizer::Optimizer;
use throttledb_sqlparse::parse;
use throttledb_workload::{oltp_templates, sales_templates, tpch_like_templates};

fn main() {
    let sales = sales_schema(SalesScale::paper());
    let tpch = tpch_schema(30.0);
    for t in sales_templates() {
        let opt = Optimizer::new(&sales);
        let start = Instant::now();
        let out = opt.optimize(&parse(&t.sql).unwrap()).unwrap();
        println!(
            "{}: peak={:.1}MB transforms={} exprs={} stage={:?} cost={:.0} grant={:.0}MB wall={:?}",
            t.name,
            out.stats.peak_memory_bytes as f64 / 1e6,
            out.stats.transformations,
            out.stats.memo_exprs,
            out.stats.stage,
            out.plan.total_cost.total(),
            out.plan.total_memory_requirement() as f64 / 1e6,
            start.elapsed()
        );
    }
    for t in tpch_like_templates().iter().chain(oltp_templates().iter()) {
        let cat = if t.name.starts_with("tpch") {
            &tpch
        } else {
            &sales
        };
        let opt = Optimizer::new(cat);
        let start = Instant::now();
        let out = opt.optimize(&parse(&t.sql).unwrap()).unwrap();
        println!(
            "{}: peak={:.1}MB transforms={} cost={:.0} wall={:?}",
            t.name,
            out.stats.peak_memory_bytes as f64 / 1e6,
            out.stats.transformations,
            out.plan.total_cost.total(),
            start.elapsed()
        );
    }
}
