//! End-to-end integration tests spanning the whole stack: SQL text ->
//! optimizer -> gateway ladder -> broker -> engine experiments.

use std::sync::Arc;
use throttledb_engine::{
    figure2_timeline, throughput_experiment_with_profiles, ArrivalSourceConfig, Server,
    ServerConfig, WorkloadProfiles,
};
use throttledb_sim::{ArrivalProcess, SimDuration, SimTime};

#[test]
fn quick_sales_run_reproduces_the_papers_qualitative_shape() {
    let cfg = ServerConfig::quick(20, true);
    let profiles = Arc::new(WorkloadProfiles::characterize_sales(&cfg));
    let cmp = throughput_experiment_with_profiles(&cfg, 20, &profiles);

    // Both configurations make progress.
    assert!(cmp.throttled.completed_after_warmup > 0);
    assert!(cmp.unthrottled.completed_after_warmup > 0);
    // The unthrottled server lets concurrent compilations pile up memory.
    assert!(
        cmp.unthrottled.compile_memory.max_value() >= cmp.throttled.compile_memory.max_value(),
        "throttling must cap concurrent compile memory"
    );
    // The throttled server engages its gateways and never hits OOM more often
    // than the unthrottled one.
    assert!(cmp.throttled.throttle.acquisitions.iter().sum::<u64>() > 0);
    assert!(cmp.throttled.oom_failures <= cmp.unthrottled.oom_failures);
}

/// The full stack run at 1 and 4 generator shards: real optimizer
/// characterization, the gateway ladder, the broker, a mixed open-loop +
/// closed-loop population — and byte-identical results either way. The
/// shard count is a wall-clock knob, so everything the run reports
/// (admission counters, arrival digest, trace bytes, event totals) must
/// be invariant under it.
#[test]
fn sharded_run_is_equal_to_single_threaded_across_the_whole_stack() {
    let base = {
        let mut cfg = ServerConfig::quick(6, true);
        cfg.warmup = SimDuration::ZERO;
        cfg.arrivals = vec![ArrivalSourceConfig {
            name: "web".to_string(),
            process: ArrivalProcess::Poisson { rate_per_sec: 4.0 },
            class: 0,
            max_in_flight: 8,
            modeled_clients: 10_000,
        }];
        cfg
    };
    let profiles = Arc::new(WorkloadProfiles::characterize_full(&base));
    let run = |shards: u32| {
        let mut cfg = base.clone();
        cfg.shards = shards;
        let mut server = Server::new(cfg.clone(), profiles.clone());
        server.enable_trace();
        server.set_active_clients(cfg.clients);
        server.begin();
        server.run_until(SimTime::ZERO + SimDuration::from_secs(900));
        let trace = server.take_trace();
        (trace, server.finish())
    };
    let (trace_1, m1) = run(1);
    let (trace_4, m4) = run(4);
    assert!(m1.arrivals > 100, "run too idle to prove anything");
    assert!(m1.completed.total() > 0, "nothing completed");
    assert_eq!(trace_1, trace_4, "shards changed the admission trace");
    assert_eq!(m1.arrival_digest, m4.arrival_digest);
    assert_eq!(m1.arrivals, m4.arrivals);
    assert_eq!(m1.arrivals_admitted, m4.arrivals_admitted);
    assert_eq!(m1.arrivals_shed, m4.arrivals_shed);
    assert_eq!(m1.completed.total(), m4.completed.total());
    assert_eq!(m1.failed.total(), m4.failed.total());
    assert_eq!(m1.events_dispatched, m4.events_dispatched);
    assert_eq!(m1.peak_queue_depth, m4.peak_queue_depth);
}

#[test]
fn figure2_scenario_produces_three_complete_timelines() {
    let timelines = figure2_timeline();
    assert_eq!(timelines.len(), 3);
    for (name, g) in &timelines {
        assert!(
            g.max_value() > 10 << 20,
            "{name} should allocate tens of MB"
        );
        assert_eq!(
            g.samples().last().map(|(_, v)| *v),
            Some(0),
            "{name} must release its memory"
        );
    }
}

#[test]
fn profiles_show_sales_needs_orders_of_magnitude_more_compile_memory() {
    let cfg = ServerConfig::quick(8, true);
    let profiles = WorkloadProfiles::characterize_sales(&cfg);
    let sales_min = profiles
        .dss
        .iter()
        .map(|t| profiles.profile(&t.name).peak_compile_bytes)
        .min()
        .unwrap();
    let oltp_max = profiles
        .oltp
        .iter()
        .map(|t| profiles.profile(&t.name).peak_compile_bytes)
        .max()
        .unwrap();
    assert!(
        sales_min > 50 * oltp_max,
        "SALES {sales_min} vs OLTP {oltp_max}"
    );
}
