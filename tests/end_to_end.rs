//! End-to-end integration tests spanning the whole stack: SQL text ->
//! optimizer -> gateway ladder -> broker -> engine experiments.

use std::sync::Arc;
use throttledb_engine::{
    figure2_timeline, throughput_experiment_with_profiles, ServerConfig, WorkloadProfiles,
};

#[test]
fn quick_sales_run_reproduces_the_papers_qualitative_shape() {
    let cfg = ServerConfig::quick(20, true);
    let profiles = Arc::new(WorkloadProfiles::characterize_sales(&cfg));
    let cmp = throughput_experiment_with_profiles(&cfg, 20, &profiles);

    // Both configurations make progress.
    assert!(cmp.throttled.completed_after_warmup > 0);
    assert!(cmp.unthrottled.completed_after_warmup > 0);
    // The unthrottled server lets concurrent compilations pile up memory.
    assert!(
        cmp.unthrottled.compile_memory.max_value() >= cmp.throttled.compile_memory.max_value(),
        "throttling must cap concurrent compile memory"
    );
    // The throttled server engages its gateways and never hits OOM more often
    // than the unthrottled one.
    assert!(cmp.throttled.throttle.acquisitions.iter().sum::<u64>() > 0);
    assert!(cmp.throttled.oom_failures <= cmp.unthrottled.oom_failures);
}

#[test]
fn figure2_scenario_produces_three_complete_timelines() {
    let timelines = figure2_timeline();
    assert_eq!(timelines.len(), 3);
    for (name, g) in &timelines {
        assert!(
            g.max_value() > 10 << 20,
            "{name} should allocate tens of MB"
        );
        assert_eq!(
            g.samples().last().map(|(_, v)| *v),
            Some(0),
            "{name} must release its memory"
        );
    }
}

#[test]
fn profiles_show_sales_needs_orders_of_magnitude_more_compile_memory() {
    let cfg = ServerConfig::quick(8, true);
    let profiles = WorkloadProfiles::characterize_sales(&cfg);
    let sales_min = profiles
        .dss
        .iter()
        .map(|t| profiles.profile(&t.name).peak_compile_bytes)
        .min()
        .unwrap();
    let oltp_max = profiles
        .oltp
        .iter()
        .map(|t| profiles.profile(&t.name).peak_compile_bytes)
        .max()
        .unwrap();
    assert!(
        sales_min > 50 * oltp_max,
        "SALES {sales_min} vs OLTP {oltp_max}"
    );
}
