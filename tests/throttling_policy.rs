//! Integration tests of the throttling policy against the real optimizer:
//! the threaded gateway ladder governs genuine compilations.

use std::sync::Arc;
use throttledb_catalog::{sales_schema, SalesScale};
use throttledb_core::{ThreadedThrottle, ThrottleConfig};
use throttledb_membroker::{BrokerConfig, MemoryBroker, SubcomponentKind};
use throttledb_optimizer::Optimizer;
use throttledb_sqlparse::parse;
use throttledb_workload::{oltp_templates, sales_templates};

#[test]
fn real_sales_compilation_climbs_the_gateway_ladder() {
    let broker = MemoryBroker::new(BrokerConfig::paper_machine());
    let throttle = Arc::new(ThreadedThrottle::new(
        ThrottleConfig::paper_machine(),
        broker.clone(),
    ));
    let catalog = sales_schema(SalesScale::paper());
    let optimizer = Optimizer::new(&catalog);
    let stmt = parse(&sales_templates()[0].sql).unwrap();
    let clerk = broker.register(SubcomponentKind::Compilation);
    let out = optimizer
        .optimize_with_governor(&stmt, throttle.governor(), Some(clerk.clone()))
        .expect("compiles");
    assert!(out.stats.peak_memory_bytes > 100 << 20);
    let stats = throttle.stats();
    // A ~200 MB compilation must have passed the small, medium and big gateways.
    assert!(stats.acquisitions[0] >= 1);
    assert!(stats.acquisitions[1] >= 1);
    assert!(stats.acquisitions[2] >= 1);
    assert_eq!(clerk.used_bytes(), 0, "all compile memory released");
}

#[test]
fn diagnostic_queries_never_touch_the_gateways() {
    let broker = MemoryBroker::new(BrokerConfig::paper_machine());
    let throttle = Arc::new(ThreadedThrottle::new(
        ThrottleConfig::paper_machine(),
        broker.clone(),
    ));
    let catalog = sales_schema(SalesScale::paper());
    let optimizer = Optimizer::new(&catalog);
    for t in oltp_templates() {
        let stmt = parse(&t.sql).unwrap();
        optimizer
            .optimize_with_governor(&stmt, throttle.governor(), None)
            .expect("compiles");
    }
    let stats = throttle.stats();
    assert_eq!(
        stats.acquisitions.iter().sum::<u64>(),
        0,
        "OLTP compiles stay exempt"
    );
    assert_eq!(stats.exempt_compilations, oltp_templates().len() as u64);
}
