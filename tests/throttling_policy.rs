//! Integration tests of the throttling policy against the real optimizer:
//! the threaded gateway ladder governs genuine compilations.

use std::sync::Arc;
use throttledb_catalog::{sales_schema, SalesScale};
use throttledb_core::{ThreadedThrottle, ThrottleConfig};
use throttledb_engine::{ArrivalSourceConfig, Server, ServerConfig, WorkloadProfiles};
use throttledb_membroker::{BrokerConfig, MemoryBroker, SubcomponentKind};
use throttledb_optimizer::Optimizer;
use throttledb_sim::{ArrivalProcess, SimDuration, SimTime};
use throttledb_sqlparse::parse;
use throttledb_workload::{oltp_templates, sales_templates};

#[test]
fn real_sales_compilation_climbs_the_gateway_ladder() {
    let broker = MemoryBroker::new(BrokerConfig::paper_machine());
    let throttle = Arc::new(ThreadedThrottle::new(
        ThrottleConfig::paper_machine(),
        broker.clone(),
    ));
    let catalog = sales_schema(SalesScale::paper());
    let optimizer = Optimizer::new(&catalog);
    let stmt = parse(&sales_templates()[0].sql).unwrap();
    let clerk = broker.register(SubcomponentKind::Compilation);
    let out = optimizer
        .optimize_with_governor(&stmt, throttle.governor(), Some(clerk.clone()))
        .expect("compiles");
    assert!(out.stats.peak_memory_bytes > 100 << 20);
    let stats = throttle.stats();
    // A ~200 MB compilation must have passed the small, medium and big gateways.
    assert!(stats.acquisitions[0] >= 1);
    assert!(stats.acquisitions[1] >= 1);
    assert!(stats.acquisitions[2] >= 1);
    assert_eq!(clerk.used_bytes(), 0, "all compile memory released");
}

#[test]
fn diagnostic_queries_never_touch_the_gateways() {
    let broker = MemoryBroker::new(BrokerConfig::paper_machine());
    let throttle = Arc::new(ThreadedThrottle::new(
        ThrottleConfig::paper_machine(),
        broker.clone(),
    ));
    let catalog = sales_schema(SalesScale::paper());
    let optimizer = Optimizer::new(&catalog);
    for t in oltp_templates() {
        let stmt = parse(&t.sql).unwrap();
        optimizer
            .optimize_with_governor(&stmt, throttle.governor(), None)
            .expect("compiles");
    }
    let stats = throttle.stats();
    assert_eq!(
        stats.acquisitions.iter().sum::<u64>(),
        0,
        "OLTP compiles stay exempt"
    );
    assert_eq!(stats.exempt_compilations, oltp_templates().len() as u64);
}

/// Every admission the policy grants — which gateway, in what order, after
/// how long a wait — must be independent of how many generator shards the
/// simulation uses. The policy sees one globally ordered arrival schedule
/// either way, so its entire stats ledger (acquisitions per rung, waits,
/// timeouts, exemptions) must match field for field at 1 and 4 shards.
#[test]
fn policy_decisions_are_invariant_under_sharding() {
    let base = {
        let mut cfg = ServerConfig::quick(4, true);
        cfg.warmup = SimDuration::ZERO;
        cfg.arrivals = vec![ArrivalSourceConfig {
            name: "ingest".to_string(),
            process: ArrivalProcess::Poisson { rate_per_sec: 3.0 },
            class: 0,
            max_in_flight: 6,
            modeled_clients: 10_000,
        }];
        cfg
    };
    let profiles = Arc::new(WorkloadProfiles::characterize_full(&base));
    let run = |shards: u32| {
        let mut cfg = base.clone();
        cfg.shards = shards;
        let mut server = Server::new(cfg.clone(), profiles.clone());
        server.set_active_clients(cfg.clients);
        server.begin();
        server.run_until(SimTime::ZERO + SimDuration::from_secs(900));
        server.finish()
    };
    let m1 = run(1);
    let m4 = run(4);
    assert!(
        m1.throttle.acquisitions.iter().sum::<u64>() > 0,
        "run never engaged the ladder"
    );
    assert_eq!(m1.throttle, m4.throttle, "policy ledger diverged");
    assert_eq!(m1.arrivals_admitted, m4.arrivals_admitted);
    assert_eq!(m1.arrivals_shed, m4.arrivals_shed);
    assert_eq!(m1.oom_failures, m4.oom_failures);
    assert_eq!(m1.compile_timeouts, m4.compile_timeouts);
    assert_eq!(m1.grant_timeouts, m4.grant_timeouts);
    assert_eq!(m1.best_effort_plans, m4.best_effort_plans);
}
