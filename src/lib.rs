//! # throttledb
//!
//! Facade crate for the `throttledb` workspace — a Rust reproduction of
//! Baryshnikov et al., *"Managing Query Compilation Memory Consumption to
//! Improve DBMS Throughput"* (CIDR 2007).
//!
//! This crate re-exports the workspace's member crates under one roof so the
//! root-level integration tests and examples can depend on a single package,
//! and so downstream users can pull the whole stack with one dependency.
//! The substance lives in the members:
//!
//! * [`membroker`] — the §3 Memory Broker (clerks, trends, notifications)
//! * [`core`] — the §4 gateway-ladder compilation throttle
//! * [`optimizer`] — memo-based optimizer with byte-accurate compile memory
//! * [`catalog`], [`sqlparse`], [`workload`] — schemas, SQL, query templates
//! * [`governor`] — shared admission layer: wait queues, decisions, pools
//! * [`executor`], [`bufferpool`] — execution grants and the page pool
//! * [`plancache`] — compiled-plan cache fronting the optimizer
//! * [`engine`], [`sim`] — the discrete-event server reproducing §5
//! * [`scenario`] — declarative multi-phase workloads with trace
//!   record/replay (see `docs/EXPERIMENTS.md`)

#![deny(missing_docs)]

pub use throttledb_bufferpool as bufferpool;
pub use throttledb_catalog as catalog;
pub use throttledb_core as core;
pub use throttledb_engine as engine;
pub use throttledb_executor as executor;
pub use throttledb_governor as governor;
pub use throttledb_membroker as membroker;
pub use throttledb_optimizer as optimizer;
pub use throttledb_plancache as plancache;
pub use throttledb_scenario as scenario;
pub use throttledb_sim as sim;
pub use throttledb_sqlparse as sqlparse;
pub use throttledb_workload as workload;
